//! Hand-rolled argument parsing (the workspace carries no CLI
//! dependency; the grammar is small and fully tested below).

use mpr_softfloat::Precision;
use std::fmt;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print Tables 1-3.
    Tables { opts: StudyOpts },
    /// Print every figure (2-13).
    Figures { opts: StudyOpts },
    /// Print the ablations.
    Ablations { opts: StudyOpts },
    /// Print the whole report: tables, figures, ablations, and the
    /// engine's cell statistics.
    Report { opts: StudyOpts },
    /// Export all artifacts as CSV.
    Export { dir: String, opts: StudyOpts },
    /// Run the executable shape validation.
    Validate { opts: StudyOpts },
    /// Run one beam campaign.
    Campaign {
        device: DeviceArg,
        workload: WorkloadArg,
        precision: Precision,
        strikes: u64,
        hours: f64,
        seed: u64,
        threads: Option<usize>,
    },
    /// Run one injection campaign.
    Inject {
        workload: WorkloadArg,
        precision: Precision,
        injections: u64,
        model: ModelArg,
        seed: u64,
        threads: Option<usize>,
    },
    /// Run the workspace static-analysis lints.
    Analyze {
        /// Emit the report as JSON instead of plain text.
        json: bool,
        /// Workspace root to scan (defaults to the current directory).
        root: String,
    },
    /// Print usage.
    Help,
}

/// Statistical scale of a study command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Fast statistics.
    #[default]
    Quick,
    /// Paper-scale statistics.
    Paper,
}

/// Options shared by every study-backed subcommand (tables, figures,
/// ablations, report, export, validate).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StudyOpts {
    /// Statistical scale.
    pub scale: Scale,
    /// `--threads N` override; `None` falls back to the `MPR_THREADS`
    /// environment variable, then to all available cores.
    pub threads: Option<usize>,
    /// `--cache-dir PATH`: on-disk experiment-cell cache.
    pub cache_dir: Option<String>,
    /// `--profile PATH`: write a JSONL observability log of the run and
    /// print a profile summary afterwards.
    pub profile: Option<String>,
}

/// Device selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceArg {
    /// NVIDIA Titan V.
    Gpu,
    /// Titan V silicon with ECC (Tesla V100).
    GpuEcc,
    /// Intel Xeon Phi 3120A.
    Knc,
    /// Xilinx Zynq-7000.
    Fpga,
}

/// Workload selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadArg {
    /// Matrix multiplication.
    Mxm,
    /// Particle potentials (GPU software-exp variant).
    Lavamd,
    /// Particle potentials (KNC transcendental-unit variant).
    LavamdKnc,
    /// LU decomposition.
    Lud,
    /// Micro-ADD.
    MicroAdd,
    /// Micro-MUL.
    MicroMul,
    /// Micro-FMA.
    MicroFma,
    /// MNIST classifier.
    Mnist,
    /// YOLO-style detector.
    Yolo,
}

/// Fault-model selector for `inject`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelArg {
    /// Single bit flip.
    Single,
    /// Double bit flip.
    Double,
    /// Random byte.
    Byte,
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

/// Usage text.
pub const USAGE: &str = "\
mpr — mixed-precision reliability study

USAGE:
    mpr tables    [STUDY OPTS]
    mpr figures   [STUDY OPTS]
    mpr ablations [STUDY OPTS]
    mpr report    [STUDY OPTS]
    mpr validate  [STUDY OPTS]
    mpr export    --dir <PATH> [STUDY OPTS]
    mpr campaign  --device <gpu|gpu-ecc|knc|fpga> --workload <WORKLOAD>
                  --precision <double|single|half>
                  [--strikes N] [--hours H] [--seed S] [--threads N]
    mpr inject    --workload <WORKLOAD> --precision <double|single|half>
                  [--n N] [--model single|double|byte] [--seed S] [--threads N]
    mpr analyze   [--json] [--root <PATH>]
    mpr help

STUDY OPTS:
    --paper           paper-scale statistics (default: quick)
    --threads N       worker threads (default: MPR_THREADS, then all cores)
    --cache-dir PATH  reuse cached experiment cells across runs
    --profile PATH    write a JSONL observability log and print a
                      profile summary (per-cell timings, cache hits)

WORKLOAD: mxm | lavamd | lavamd-knc | lud | micro-add | micro-mul |
          micro-fma | mnist | yolo
";

/// Parses the command line (without the program name).
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first problem found.
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let mut it = args.iter().map(String::as_str);
    let sub = it.next().ok_or_else(|| ParseError(USAGE.to_string()))?;
    let rest: Vec<&str> = it.collect();
    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "tables" => Ok(Command::Tables {
            opts: study_opts(&rest, false)?,
        }),
        "figures" => Ok(Command::Figures {
            opts: study_opts(&rest, false)?,
        }),
        "ablations" => Ok(Command::Ablations {
            opts: study_opts(&rest, false)?,
        }),
        "report" => Ok(Command::Report {
            opts: study_opts(&rest, false)?,
        }),
        "validate" => Ok(Command::Validate {
            opts: study_opts(&rest, false)?,
        }),
        "export" => Ok(Command::Export {
            dir: required(&rest, "--dir")?.to_string(),
            opts: study_opts(&rest, true)?,
        }),
        "campaign" => Ok(Command::Campaign {
            device: device_of(required(&rest, "--device")?)?,
            workload: workload_of(required(&rest, "--workload")?)?,
            precision: precision_of(required(&rest, "--precision")?)?,
            strikes: numeric(&rest, "--strikes", 2000)?,
            hours: float(&rest, "--hours", 100.0)?,
            seed: numeric(&rest, "--seed", 0)?,
            threads: threads_of(&rest)?,
        }),
        "inject" => Ok(Command::Inject {
            workload: workload_of(required(&rest, "--workload")?)?,
            precision: precision_of(required(&rest, "--precision")?)?,
            injections: numeric(&rest, "--n", 2000)?,
            model: model_of(optional(&rest, "--model").unwrap_or("single"))?,
            seed: numeric(&rest, "--seed", 0)?,
            threads: threads_of(&rest)?,
        }),
        "analyze" => {
            if let Some(&bad) = rest
                .iter()
                .find(|&&a| a.starts_with("--") && a != "--json" && a != "--root")
            {
                return Err(ParseError(format!("unknown flag `{bad}`")));
            }
            Ok(Command::Analyze {
                json: rest.contains(&"--json"),
                root: optional(&rest, "--root").unwrap_or(".").to_string(),
            })
        }
        other => Err(ParseError(format!("unknown command `{other}`\n\n{USAGE}"))),
    }
}

/// Parses the shared study options, rejecting unknown flags. `allow_dir`
/// tolerates `export`'s `--dir <path>` value pair.
fn study_opts(rest: &[&str], allow_dir: bool) -> Result<StudyOpts, ParseError> {
    let mut opts = StudyOpts::default();
    let mut i = 0;
    while i < rest.len() {
        match rest[i] {
            "--paper" => {
                opts.scale = Scale::Paper;
                i += 1;
            }
            "--threads" => {
                let v = rest
                    .get(i + 1)
                    .ok_or_else(|| ParseError("`--threads` expects a value".to_string()))?;
                opts.threads = Some(v.parse().map_err(|_| {
                    ParseError(format!("`--threads` expects an integer, got `{v}`"))
                })?);
                i += 2;
            }
            "--cache-dir" => {
                let v = rest
                    .get(i + 1)
                    .ok_or_else(|| ParseError("`--cache-dir` expects a path".to_string()))?;
                opts.cache_dir = Some(v.to_string());
                i += 2;
            }
            "--profile" => {
                let v = rest
                    .get(i + 1)
                    .ok_or_else(|| ParseError("`--profile` expects a path".to_string()))?;
                opts.profile = Some(v.to_string());
                i += 2;
            }
            "--dir" if allow_dir => i += 2,
            other => return Err(ParseError(format!("unknown flag `{other}`\n\n{USAGE}"))),
        }
    }
    Ok(opts)
}

/// Parses an optional `--threads N` flag (campaign/inject).
fn threads_of(rest: &[&str]) -> Result<Option<usize>, ParseError> {
    match optional(rest, "--threads") {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| ParseError(format!("`--threads` expects an integer, got `{v}`"))),
    }
}

fn optional<'a>(rest: &[&'a str], flag: &str) -> Option<&'a str> {
    rest.iter()
        .position(|&a| a == flag)
        .and_then(|i| rest.get(i + 1).copied())
}

fn required<'a>(rest: &[&'a str], flag: &str) -> Result<&'a str, ParseError> {
    optional(rest, flag).ok_or_else(|| ParseError(format!("missing required flag `{flag}`")))
}

fn numeric(rest: &[&str], flag: &str, default: u64) -> Result<u64, ParseError> {
    match optional(rest, flag) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| ParseError(format!("`{flag}` expects an integer, got `{v}`"))),
    }
}

fn float(rest: &[&str], flag: &str, default: f64) -> Result<f64, ParseError> {
    match optional(rest, flag) {
        None => Ok(default),
        Some(v) => v
            .parse::<f64>()
            .ok()
            .filter(|x| x.is_finite() && *x > 0.0)
            .ok_or_else(|| ParseError(format!("`{flag}` expects a positive number, got `{v}`"))),
    }
}

fn device_of(s: &str) -> Result<DeviceArg, ParseError> {
    match s {
        "gpu" | "titan-v" => Ok(DeviceArg::Gpu),
        "gpu-ecc" | "v100" => Ok(DeviceArg::GpuEcc),
        "knc" | "xeon-phi" => Ok(DeviceArg::Knc),
        "fpga" | "zynq" => Ok(DeviceArg::Fpga),
        _ => Err(ParseError(format!(
            "unknown device `{s}` (gpu | gpu-ecc | knc | fpga)"
        ))),
    }
}

fn workload_of(s: &str) -> Result<WorkloadArg, ParseError> {
    match s {
        "mxm" | "gemm" => Ok(WorkloadArg::Mxm),
        "lavamd" => Ok(WorkloadArg::Lavamd),
        "lavamd-knc" => Ok(WorkloadArg::LavamdKnc),
        "lud" => Ok(WorkloadArg::Lud),
        "micro-add" => Ok(WorkloadArg::MicroAdd),
        "micro-mul" => Ok(WorkloadArg::MicroMul),
        "micro-fma" => Ok(WorkloadArg::MicroFma),
        "mnist" => Ok(WorkloadArg::Mnist),
        "yolo" | "yolov3" => Ok(WorkloadArg::Yolo),
        _ => Err(ParseError(format!("unknown workload `{s}`\n\n{USAGE}"))),
    }
}

fn precision_of(s: &str) -> Result<Precision, ParseError> {
    s.parse()
        .map_err(|_| ParseError(format!("unknown precision `{s}` (double | single | half)")))
}

fn model_of(s: &str) -> Result<ModelArg, ParseError> {
    match s {
        "single" => Ok(ModelArg::Single),
        "double" => Ok(ModelArg::Double),
        "byte" => Ok(ModelArg::Byte),
        _ => Err(ParseError(format!(
            "unknown model `{s}` (single | double | byte)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(line: &str) -> Command {
        let args: Vec<String> = line.split_whitespace().map(String::from).collect();
        parse(&args).expect(line)
    }

    fn parse_err(line: &str) -> ParseError {
        let args: Vec<String> = line.split_whitespace().map(String::from).collect();
        parse(&args).expect_err(line)
    }

    #[test]
    fn subcommands_parse() {
        assert_eq!(
            parse_ok("tables"),
            Command::Tables {
                opts: StudyOpts::default()
            }
        );
        assert_eq!(
            parse_ok("figures --paper"),
            Command::Figures {
                opts: StudyOpts {
                    scale: Scale::Paper,
                    ..StudyOpts::default()
                }
            }
        );
        assert_eq!(parse_ok("help"), Command::Help);
        assert_eq!(
            parse_ok("export --dir /tmp/x --paper"),
            Command::Export {
                dir: "/tmp/x".to_string(),
                opts: StudyOpts {
                    scale: Scale::Paper,
                    ..StudyOpts::default()
                }
            }
        );
    }

    #[test]
    fn study_opts_parse_threads_and_cache_dir() {
        assert_eq!(
            parse_ok("report --threads 4 --cache-dir /tmp/cells"),
            Command::Report {
                opts: StudyOpts {
                    scale: Scale::Quick,
                    threads: Some(4),
                    cache_dir: Some("/tmp/cells".to_string()),
                    profile: None,
                }
            }
        );
        assert_eq!(
            parse_ok("tables --paper --threads 2"),
            Command::Tables {
                opts: StudyOpts {
                    scale: Scale::Paper,
                    threads: Some(2),
                    cache_dir: None,
                    profile: None,
                }
            }
        );
        assert!(parse_err("figures --threads lots").0.contains("integer"));
        assert!(parse_err("tables --cache-dir").0.contains("path"));
        assert!(parse_err("tables --frobnicate").0.contains("unknown flag"));
    }

    #[test]
    fn study_opts_parse_profile() {
        assert_eq!(
            parse_ok("report --profile /tmp/run.jsonl"),
            Command::Report {
                opts: StudyOpts {
                    scale: Scale::Quick,
                    threads: None,
                    cache_dir: None,
                    profile: Some("/tmp/run.jsonl".to_string()),
                }
            }
        );
        assert!(matches!(
            parse_ok("figures --paper --profile p.jsonl"),
            Command::Figures { opts } if opts.profile.as_deref() == Some("p.jsonl")
        ));
        assert!(parse_err("tables --profile").0.contains("path"));
    }

    #[test]
    fn campaign_parses_with_defaults_and_overrides() {
        let c = parse_ok("campaign --device gpu --workload mxm --precision half");
        assert_eq!(
            c,
            Command::Campaign {
                device: DeviceArg::Gpu,
                workload: WorkloadArg::Mxm,
                precision: Precision::Half,
                strikes: 2000,
                hours: 100.0,
                seed: 0,
                threads: None,
            }
        );
        let c = parse_ok(
            "campaign --device knc --workload lavamd-knc --precision single \
             --strikes 500 --hours 10 --seed 7 --threads 3",
        );
        match c {
            Command::Campaign {
                device,
                workload,
                strikes,
                hours,
                seed,
                threads,
                ..
            } => {
                assert_eq!(device, DeviceArg::Knc);
                assert_eq!(workload, WorkloadArg::LavamdKnc);
                assert_eq!((strikes, hours, seed), (500, 10.0, 7));
                assert_eq!(threads, Some(3));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn analyze_parses() {
        assert_eq!(
            parse_ok("analyze"),
            Command::Analyze {
                json: false,
                root: ".".to_string()
            }
        );
        assert_eq!(
            parse_ok("analyze --json --root /tmp/ws"),
            Command::Analyze {
                json: true,
                root: "/tmp/ws".to_string()
            }
        );
        assert!(parse_err("analyze --jsno").0.contains("unknown flag"));
    }

    #[test]
    fn inject_parses() {
        let c = parse_ok("inject --workload micro-fma --precision double --n 300 --model byte");
        assert_eq!(
            c,
            Command::Inject {
                workload: WorkloadArg::MicroFma,
                precision: Precision::Double,
                injections: 300,
                model: ModelArg::Byte,
                seed: 0,
                threads: None,
            }
        );
    }

    #[test]
    fn helpful_errors() {
        assert!(parse_err("campaign --workload mxm --precision half")
            .0
            .contains("--device"));
        assert!(
            parse_err("campaign --device tpu --workload mxm --precision half")
                .0
                .contains("unknown device")
        );
        assert!(parse_err("inject --workload mxm --precision quad")
            .0
            .contains("unknown precision"));
        assert!(parse_err("frobnicate").0.contains("unknown command"));
        assert!(parse_err("export").0.contains("--dir"));
        assert!(
            parse_err("campaign --device gpu --workload mxm --precision half --strikes lots")
                .0
                .contains("integer")
        );
    }

    #[test]
    fn aliases_resolve() {
        assert!(matches!(
            parse_ok("campaign --device v100 --workload gemm --precision double"),
            Command::Campaign {
                device: DeviceArg::GpuEcc,
                workload: WorkloadArg::Mxm,
                ..
            }
        ));
    }
}
