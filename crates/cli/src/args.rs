//! Hand-rolled argument parsing (the workspace carries no CLI
//! dependency; the grammar is small and fully tested below).

use mpr_softfloat::Precision;
use std::fmt;
use std::time::Duration;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print Tables 1-3.
    Tables { opts: StudyOpts },
    /// Print every figure (2-13).
    Figures { opts: StudyOpts },
    /// Print the ablations.
    Ablations { opts: StudyOpts },
    /// Print the whole report: tables, figures, ablations, and the
    /// engine's cell statistics.
    Report { opts: StudyOpts },
    /// Export all artifacts as CSV.
    Export { dir: String, opts: StudyOpts },
    /// Run the executable shape validation.
    Validate { opts: StudyOpts },
    /// Run one beam campaign.
    Campaign {
        device: DeviceArg,
        workload: WorkloadArg,
        precision: Precision,
        strikes: u64,
        hours: f64,
        seed: u64,
        threads: Option<usize>,
        retries: u32,
        cell_timeout: Option<Duration>,
        sampling: SamplingOpts,
    },
    /// Run one injection campaign.
    Inject {
        workload: WorkloadArg,
        precision: Precision,
        injections: u64,
        model: ModelArg,
        seed: u64,
        threads: Option<usize>,
        retries: u32,
        cell_timeout: Option<Duration>,
        sampling: SamplingOpts,
    },
    /// Run a hostile persistence exercise: a small fixed campaign whose
    /// cache and manifest I/O routes through the seeded chaos
    /// filesystem, then report the injected-fault ledger.
    Chaos {
        /// Chaos options.
        opts: ChaosOpts,
    },
    /// Run the workspace static-analysis lints.
    Analyze {
        /// Emit the report as JSON instead of plain text.
        json: bool,
        /// Workspace root to scan (defaults to the current directory).
        root: String,
        /// Compare findings against a committed JSON baseline report;
        /// exit nonzero with a readable diff when they drift.
        baseline: Option<String>,
    },
    /// Print usage.
    Help,
}

impl Command {
    /// The shared study options, for commands that carry them.
    pub fn study_opts(&self) -> Option<&StudyOpts> {
        match self {
            Command::Tables { opts }
            | Command::Figures { opts }
            | Command::Ablations { opts }
            | Command::Report { opts }
            | Command::Validate { opts }
            | Command::Export { opts, .. } => Some(opts),
            _ => None,
        }
    }
}

/// Statistical scale of a study command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Fast statistics.
    #[default]
    Quick,
    /// Paper-scale statistics.
    Paper,
}

/// Adaptive strike-sampling options, shared by the study subcommands
/// and the one-off `campaign`/`inject` commands.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SamplingOpts {
    /// `--adaptive`: stratified Neyman allocation with sequential early
    /// stopping; the strike/injection count becomes a budget ceiling.
    pub adaptive: bool,
    /// `--ci-width W`: target relative width of the SDC-count 95% CI at
    /// which a cell stops early (defaults to the scale's preset:
    /// 0.8 quick, 0.25 paper). Requires `--adaptive`.
    pub ci_width: Option<f64>,
    /// `--strike-budget N`: per-cell strike ceiling override (defaults
    /// to the fixed-path budget). Requires `--adaptive`.
    pub strike_budget: Option<u64>,
}

/// Options shared by every study-backed subcommand (tables, figures,
/// ablations, report, export, validate).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StudyOpts {
    /// Statistical scale.
    pub scale: Scale,
    /// `--threads N` override; `None` falls back to the `MPR_THREADS`
    /// environment variable, then to all available cores.
    pub threads: Option<usize>,
    /// `--cache-dir PATH`: on-disk experiment-cell cache.
    pub cache_dir: Option<String>,
    /// `--profile PATH`: write a JSONL observability log of the run and
    /// print a profile summary afterwards.
    pub profile: Option<String>,
    /// `--retries N`: re-attempt a failed or hung cell up to N times
    /// with its seed unchanged.
    pub retries: u32,
    /// `--cell-timeout DUR`: per-cell watchdog deadline; `None` falls
    /// back to the `MPR_CELL_TIMEOUT` environment variable, then to no
    /// deadline.
    pub cell_timeout: Option<Duration>,
    /// `--resume`: re-execute only the cells the cache directory's
    /// manifest records as failed, hung, or missing. Requires
    /// `--cache-dir`.
    pub resume: bool,
    /// Adaptive-sampling flags (`--adaptive`, `--ci-width`,
    /// `--strike-budget`).
    pub sampling: SamplingOpts,
}

/// Options for the `chaos` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosOpts {
    /// `--cache-dir PATH` (required): the directory the hostile run
    /// persists into and resumes from.
    pub cache_dir: String,
    /// `--chaos-seed S`: seeds the fault schedule; the same seed
    /// replays the same faults (default 2019).
    pub seed: u64,
    /// `--chaos-rate R`: per-operation fault probability in `[0, 1]`
    /// (default 0: the chaos layer observes but never injects).
    pub rate: f64,
    /// `--chaos-crash-at K`: simulate a hard crash at the K-th
    /// filesystem operation (fail-stop; every later operation errors).
    pub crash_at: Option<u64>,
    /// `--threads N` override.
    pub threads: Option<usize>,
    /// `--retries N`: per-cell retry budget against injected faults.
    pub retries: u32,
    /// `--resume`: report what the manifest says survived, then run
    /// only the missing subset.
    pub resume: bool,
}

/// Device selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceArg {
    /// NVIDIA Titan V.
    Gpu,
    /// Titan V silicon with ECC (Tesla V100).
    GpuEcc,
    /// Intel Xeon Phi 3120A.
    Knc,
    /// Xilinx Zynq-7000.
    Fpga,
}

/// Workload selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadArg {
    /// Matrix multiplication.
    Mxm,
    /// Particle potentials (GPU software-exp variant).
    Lavamd,
    /// Particle potentials (KNC transcendental-unit variant).
    LavamdKnc,
    /// LU decomposition.
    Lud,
    /// Micro-ADD.
    MicroAdd,
    /// Micro-MUL.
    MicroMul,
    /// Micro-FMA.
    MicroFma,
    /// MNIST classifier.
    Mnist,
    /// YOLO-style detector.
    Yolo,
}

/// Fault-model selector for `inject`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelArg {
    /// Single bit flip.
    Single,
    /// Double bit flip.
    Double,
    /// Random byte.
    Byte,
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

/// Usage text.
pub const USAGE: &str = "\
mpr — mixed-precision reliability study

USAGE:
    mpr tables    [STUDY OPTS]
    mpr figures   [STUDY OPTS]
    mpr ablations [STUDY OPTS]
    mpr report    [STUDY OPTS]
    mpr validate  [STUDY OPTS]
    mpr export    --dir <PATH> [STUDY OPTS]
    mpr campaign  --device <gpu|gpu-ecc|knc|fpga> --workload <WORKLOAD>
                  --precision <double|single|half>
                  [--strikes N] [--hours H] [--seed S] [--threads N]
                  [--retries N] [--cell-timeout DUR]
                  [--adaptive] [--ci-width W] [--strike-budget N]
    mpr inject    --workload <WORKLOAD> --precision <double|single|half>
                  [--n N] [--model single|double|byte] [--seed S] [--threads N]
                  [--retries N] [--cell-timeout DUR]
                  [--adaptive] [--ci-width W] [--strike-budget N]
    mpr chaos     --cache-dir <PATH> [--chaos-seed S] [--chaos-rate R]
                  [--chaos-crash-at K] [--threads N] [--retries N] [--resume]
    mpr analyze   [--json] [--root <PATH>] [--baseline <REPORT.json>]
    mpr help

CHAOS OPTS:
    --chaos-seed S     seed for the deterministic fault schedule; the
                       same seed replays the same faults (default 2019)
    --chaos-rate R     per-operation fault probability in [0, 1]
                       (default 0 — observe I/O, inject nothing)
    --chaos-crash-at K simulate a hard crash at filesystem op K; rerun
                       with --resume to finish the interrupted campaign

STUDY OPTS:
    --paper            paper-scale statistics (default: quick)
    --threads N        worker threads (default: MPR_THREADS, then all cores)
    --cache-dir PATH   reuse cached experiment cells across runs
    --profile PATH     write a JSONL observability log and print a
                       profile summary (per-cell timings, cache hits)
    --retries N        re-attempt a failed or hung cell up to N times
                       (same seed; a recovered cell is byte-identical)
    --cell-timeout DUR per-cell watchdog deadline, e.g. 5s, 500ms, 2.5
                       (bare numbers are seconds; default:
                       MPR_CELL_TIMEOUT, then no deadline)
    --resume           re-execute only the cells the cache manifest
                       records as failed/hung/missing (needs --cache-dir)
    --adaptive         adaptive strike sampling: stratified Neyman
                       allocation with sequential early stopping; the
                       fixed budget becomes a ceiling and converged
                       cells donate spare strikes to noisy ones
    --ci-width W       stop a cell once the relative width of its SDC
                       95% CI falls below W (default: 0.8 quick, 0.25
                       paper; needs --adaptive)
    --strike-budget N  per-cell strike ceiling override (needs
                       --adaptive)

WORKLOAD: mxm | lavamd | lavamd-knc | lud | micro-add | micro-mul |
          micro-fma | mnist | yolo
";

/// Parses the command line (without the program name).
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first problem found.
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let mut it = args.iter().map(String::as_str);
    let sub = it.next().ok_or_else(|| ParseError(USAGE.to_string()))?;
    let rest: Vec<&str> = it.collect();
    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "tables" => Ok(Command::Tables {
            opts: study_opts(&rest, false)?,
        }),
        "figures" => Ok(Command::Figures {
            opts: study_opts(&rest, false)?,
        }),
        "ablations" => Ok(Command::Ablations {
            opts: study_opts(&rest, false)?,
        }),
        "report" => Ok(Command::Report {
            opts: study_opts(&rest, false)?,
        }),
        "validate" => Ok(Command::Validate {
            opts: study_opts(&rest, false)?,
        }),
        "export" => Ok(Command::Export {
            dir: required(&rest, "--dir")?.to_string(),
            opts: study_opts(&rest, true)?,
        }),
        "campaign" => Ok(Command::Campaign {
            device: device_of(required(&rest, "--device")?)?,
            workload: workload_of(required(&rest, "--workload")?)?,
            precision: precision_of(required(&rest, "--precision")?)?,
            strikes: numeric(&rest, "--strikes", 2000)?,
            hours: float(&rest, "--hours", 100.0)?,
            seed: numeric(&rest, "--seed", 0)?,
            threads: threads_of(&rest)?,
            retries: retries_of(&rest)?,
            cell_timeout: cell_timeout_of(&rest)?,
            sampling: sampling_of(&rest)?,
        }),
        "inject" => Ok(Command::Inject {
            workload: workload_of(required(&rest, "--workload")?)?,
            precision: precision_of(required(&rest, "--precision")?)?,
            injections: numeric(&rest, "--n", 2000)?,
            model: model_of(optional(&rest, "--model").unwrap_or("single"))?,
            seed: numeric(&rest, "--seed", 0)?,
            threads: threads_of(&rest)?,
            retries: retries_of(&rest)?,
            cell_timeout: cell_timeout_of(&rest)?,
            sampling: sampling_of(&rest)?,
        }),
        "chaos" => {
            const KNOWN: [&str; 7] = [
                "--cache-dir",
                "--chaos-seed",
                "--chaos-rate",
                "--chaos-crash-at",
                "--threads",
                "--retries",
                "--resume",
            ];
            if let Some(&bad) = rest
                .iter()
                .find(|&&a| a.starts_with("--") && !KNOWN.contains(&a))
            {
                return Err(ParseError(format!("unknown flag `{bad}`\n\n{USAGE}")));
            }
            Ok(Command::Chaos {
                opts: ChaosOpts {
                    cache_dir: required(&rest, "--cache-dir")?.to_string(),
                    seed: numeric(&rest, "--chaos-seed", 2019)?,
                    rate: chaos_rate_of(&rest)?,
                    crash_at: crash_at_of(&rest)?,
                    threads: threads_of(&rest)?,
                    retries: retries_of(&rest)?,
                    resume: rest.contains(&"--resume"),
                },
            })
        }
        "analyze" => {
            if let Some(&bad) = rest.iter().find(|&&a| {
                a.starts_with("--") && a != "--json" && a != "--root" && a != "--baseline"
            }) {
                return Err(ParseError(format!("unknown flag `{bad}`")));
            }
            let baseline = if rest.contains(&"--baseline") {
                Some(
                    optional(&rest, "--baseline")
                        .ok_or_else(|| ParseError("`--baseline` expects a path".to_string()))?
                        .to_string(),
                )
            } else {
                None
            };
            Ok(Command::Analyze {
                json: rest.contains(&"--json"),
                root: optional(&rest, "--root").unwrap_or(".").to_string(),
                baseline,
            })
        }
        other => Err(ParseError(format!("unknown command `{other}`\n\n{USAGE}"))),
    }
}

/// Parses the shared study options, rejecting unknown flags. `allow_dir`
/// tolerates `export`'s `--dir <path>` value pair.
fn study_opts(rest: &[&str], allow_dir: bool) -> Result<StudyOpts, ParseError> {
    let mut opts = StudyOpts::default();
    let mut i = 0;
    while i < rest.len() {
        match rest[i] {
            "--paper" => {
                opts.scale = Scale::Paper;
                i += 1;
            }
            "--threads" => {
                let v = rest
                    .get(i + 1)
                    .ok_or_else(|| ParseError("`--threads` expects a value".to_string()))?;
                opts.threads = Some(v.parse().map_err(|_| {
                    ParseError(format!("`--threads` expects an integer, got `{v}`"))
                })?);
                i += 2;
            }
            "--cache-dir" => {
                let v = rest
                    .get(i + 1)
                    .ok_or_else(|| ParseError("`--cache-dir` expects a path".to_string()))?;
                opts.cache_dir = Some(v.to_string());
                i += 2;
            }
            "--profile" => {
                let v = rest
                    .get(i + 1)
                    .ok_or_else(|| ParseError("`--profile` expects a path".to_string()))?;
                opts.profile = Some(v.to_string());
                i += 2;
            }
            "--retries" => {
                let v = rest
                    .get(i + 1)
                    .ok_or_else(|| ParseError("`--retries` expects a count".to_string()))?;
                opts.retries = v.parse().map_err(|_| {
                    ParseError(format!("`--retries` expects an integer, got `{v}`"))
                })?;
                i += 2;
            }
            "--cell-timeout" => {
                let v = rest
                    .get(i + 1)
                    .ok_or_else(|| ParseError("`--cell-timeout` expects a duration".to_string()))?;
                opts.cell_timeout = Some(duration_of(v)?);
                i += 2;
            }
            "--resume" => {
                opts.resume = true;
                i += 1;
            }
            "--adaptive" => i += 1,
            "--ci-width" | "--strike-budget" => i += 2,
            "--dir" if allow_dir => i += 2,
            other => return Err(ParseError(format!("unknown flag `{other}`\n\n{USAGE}"))),
        }
    }
    if opts.resume && opts.cache_dir.is_none() {
        return Err(ParseError(
            "`--resume` needs `--cache-dir` (the manifest lives there)".to_string(),
        ));
    }
    opts.sampling = sampling_of(rest)?;
    Ok(opts)
}

/// Parses the adaptive-sampling flags (study and campaign/inject).
fn sampling_of(rest: &[&str]) -> Result<SamplingOpts, ParseError> {
    let adaptive = rest.contains(&"--adaptive");
    let ci_width = match optional(rest, "--ci-width") {
        None => {
            if rest.contains(&"--ci-width") {
                return Err(ParseError("`--ci-width` expects a value".to_string()));
            }
            None
        }
        Some(v) => Some(
            v.parse::<f64>()
                .ok()
                .filter(|x| x.is_finite() && *x > 0.0)
                .ok_or_else(|| {
                    ParseError(format!("`--ci-width` expects a positive number, got `{v}`"))
                })?,
        ),
    };
    let strike_budget =
        match optional(rest, "--strike-budget") {
            None => {
                if rest.contains(&"--strike-budget") {
                    return Err(ParseError("`--strike-budget` expects a count".to_string()));
                }
                None
            }
            Some(v) => Some(v.parse().map_err(|_| {
                ParseError(format!("`--strike-budget` expects an integer, got `{v}`"))
            })?),
        };
    if !adaptive && (ci_width.is_some() || strike_budget.is_some()) {
        return Err(ParseError(
            "`--ci-width` and `--strike-budget` need `--adaptive`".to_string(),
        ));
    }
    Ok(SamplingOpts {
        adaptive,
        ci_width,
        strike_budget,
    })
}

/// Parses an optional `--threads N` flag (campaign/inject).
fn threads_of(rest: &[&str]) -> Result<Option<usize>, ParseError> {
    match optional(rest, "--threads") {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| ParseError(format!("`--threads` expects an integer, got `{v}`"))),
    }
}

/// Parses an optional `--retries N` flag (campaign/inject).
fn retries_of(rest: &[&str]) -> Result<u32, ParseError> {
    match optional(rest, "--retries") {
        None => Ok(0),
        Some(v) => v
            .parse()
            .map_err(|_| ParseError(format!("`--retries` expects an integer, got `{v}`"))),
    }
}

/// Parses the optional `--chaos-rate R` fraction (chaos).
fn chaos_rate_of(rest: &[&str]) -> Result<f64, ParseError> {
    match optional(rest, "--chaos-rate") {
        None => Ok(0.0),
        Some(v) => v
            .parse::<f64>()
            .ok()
            .filter(|x| x.is_finite() && (0.0..=1.0).contains(x))
            .ok_or_else(|| {
                ParseError(format!(
                    "`--chaos-rate` expects a fraction in [0, 1], got `{v}`"
                ))
            }),
    }
}

/// Parses the optional `--chaos-crash-at K` operation index (chaos).
fn crash_at_of(rest: &[&str]) -> Result<Option<u64>, ParseError> {
    match optional(rest, "--chaos-crash-at") {
        None => Ok(None),
        Some(v) => v.parse().map(Some).map_err(|_| {
            ParseError(format!(
                "`--chaos-crash-at` expects an operation index, got `{v}`"
            ))
        }),
    }
}

/// Parses an optional `--cell-timeout DUR` flag (campaign/inject).
fn cell_timeout_of(rest: &[&str]) -> Result<Option<Duration>, ParseError> {
    optional(rest, "--cell-timeout")
        .map(duration_of)
        .transpose()
}

/// Parses a watchdog duration: `500ms`, `5s`, or bare seconds (`2.5`).
///
/// # Errors
///
/// Returns a [`ParseError`] unless the value is a positive, finite,
/// reasonable duration.
pub fn duration_of(s: &str) -> Result<Duration, ParseError> {
    let (num, unit_s) = if let Some(v) = s.strip_suffix("ms") {
        (v, 0.001)
    } else if let Some(v) = s.strip_suffix('s') {
        (v, 1.0)
    } else {
        (s, 1.0)
    };
    num.parse::<f64>()
        .ok()
        .map(|x| x * unit_s)
        .filter(|x| x.is_finite() && *x > 0.0 && *x <= 1.0e9)
        .map(Duration::from_secs_f64)
        .ok_or_else(|| {
            ParseError(format!(
                "expected a positive duration like `5s`, `500ms`, or `2.5`, got `{s}`"
            ))
        })
}

fn optional<'a>(rest: &[&'a str], flag: &str) -> Option<&'a str> {
    rest.iter()
        .position(|&a| a == flag)
        .and_then(|i| rest.get(i + 1).copied())
}

fn required<'a>(rest: &[&'a str], flag: &str) -> Result<&'a str, ParseError> {
    optional(rest, flag).ok_or_else(|| ParseError(format!("missing required flag `{flag}`")))
}

fn numeric(rest: &[&str], flag: &str, default: u64) -> Result<u64, ParseError> {
    match optional(rest, flag) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| ParseError(format!("`{flag}` expects an integer, got `{v}`"))),
    }
}

fn float(rest: &[&str], flag: &str, default: f64) -> Result<f64, ParseError> {
    match optional(rest, flag) {
        None => Ok(default),
        Some(v) => v
            .parse::<f64>()
            .ok()
            .filter(|x| x.is_finite() && *x > 0.0)
            .ok_or_else(|| ParseError(format!("`{flag}` expects a positive number, got `{v}`"))),
    }
}

fn device_of(s: &str) -> Result<DeviceArg, ParseError> {
    match s {
        "gpu" | "titan-v" => Ok(DeviceArg::Gpu),
        "gpu-ecc" | "v100" => Ok(DeviceArg::GpuEcc),
        "knc" | "xeon-phi" => Ok(DeviceArg::Knc),
        "fpga" | "zynq" => Ok(DeviceArg::Fpga),
        _ => Err(ParseError(format!(
            "unknown device `{s}` (gpu | gpu-ecc | knc | fpga)"
        ))),
    }
}

fn workload_of(s: &str) -> Result<WorkloadArg, ParseError> {
    match s {
        "mxm" | "gemm" => Ok(WorkloadArg::Mxm),
        "lavamd" => Ok(WorkloadArg::Lavamd),
        "lavamd-knc" => Ok(WorkloadArg::LavamdKnc),
        "lud" => Ok(WorkloadArg::Lud),
        "micro-add" => Ok(WorkloadArg::MicroAdd),
        "micro-mul" => Ok(WorkloadArg::MicroMul),
        "micro-fma" => Ok(WorkloadArg::MicroFma),
        "mnist" => Ok(WorkloadArg::Mnist),
        "yolo" | "yolov3" => Ok(WorkloadArg::Yolo),
        _ => Err(ParseError(format!("unknown workload `{s}`\n\n{USAGE}"))),
    }
}

fn precision_of(s: &str) -> Result<Precision, ParseError> {
    s.parse()
        .map_err(|_| ParseError(format!("unknown precision `{s}` (double | single | half)")))
}

fn model_of(s: &str) -> Result<ModelArg, ParseError> {
    match s {
        "single" => Ok(ModelArg::Single),
        "double" => Ok(ModelArg::Double),
        "byte" => Ok(ModelArg::Byte),
        _ => Err(ParseError(format!(
            "unknown model `{s}` (single | double | byte)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(line: &str) -> Command {
        let args: Vec<String> = line.split_whitespace().map(String::from).collect();
        parse(&args).expect(line)
    }

    fn parse_err(line: &str) -> ParseError {
        let args: Vec<String> = line.split_whitespace().map(String::from).collect();
        parse(&args).expect_err(line)
    }

    #[test]
    fn subcommands_parse() {
        assert_eq!(
            parse_ok("tables"),
            Command::Tables {
                opts: StudyOpts::default()
            }
        );
        assert_eq!(
            parse_ok("figures --paper"),
            Command::Figures {
                opts: StudyOpts {
                    scale: Scale::Paper,
                    ..StudyOpts::default()
                }
            }
        );
        assert_eq!(parse_ok("help"), Command::Help);
        assert_eq!(
            parse_ok("export --dir /tmp/x --paper"),
            Command::Export {
                dir: "/tmp/x".to_string(),
                opts: StudyOpts {
                    scale: Scale::Paper,
                    ..StudyOpts::default()
                }
            }
        );
    }

    #[test]
    fn study_opts_parse_threads_and_cache_dir() {
        assert_eq!(
            parse_ok("report --threads 4 --cache-dir /tmp/cells"),
            Command::Report {
                opts: StudyOpts {
                    scale: Scale::Quick,
                    threads: Some(4),
                    cache_dir: Some("/tmp/cells".to_string()),
                    ..StudyOpts::default()
                }
            }
        );
        assert_eq!(
            parse_ok("tables --paper --threads 2"),
            Command::Tables {
                opts: StudyOpts {
                    scale: Scale::Paper,
                    threads: Some(2),
                    ..StudyOpts::default()
                }
            }
        );
        assert!(parse_err("figures --threads lots").0.contains("integer"));
        assert!(parse_err("tables --cache-dir").0.contains("path"));
        assert!(parse_err("tables --frobnicate").0.contains("unknown flag"));
    }

    #[test]
    fn study_opts_parse_profile() {
        assert_eq!(
            parse_ok("report --profile /tmp/run.jsonl"),
            Command::Report {
                opts: StudyOpts {
                    profile: Some("/tmp/run.jsonl".to_string()),
                    ..StudyOpts::default()
                }
            }
        );
        assert!(matches!(
            parse_ok("figures --paper --profile p.jsonl"),
            Command::Figures { opts } if opts.profile.as_deref() == Some("p.jsonl")
        ));
        assert!(parse_err("tables --profile").0.contains("path"));
    }

    #[test]
    fn campaign_parses_with_defaults_and_overrides() {
        let c = parse_ok("campaign --device gpu --workload mxm --precision half");
        assert_eq!(
            c,
            Command::Campaign {
                device: DeviceArg::Gpu,
                workload: WorkloadArg::Mxm,
                precision: Precision::Half,
                strikes: 2000,
                hours: 100.0,
                seed: 0,
                threads: None,
                retries: 0,
                cell_timeout: None,
                sampling: SamplingOpts::default(),
            }
        );
        let c = parse_ok(
            "campaign --device knc --workload lavamd-knc --precision single \
             --strikes 500 --hours 10 --seed 7 --threads 3",
        );
        match c {
            Command::Campaign {
                device,
                workload,
                strikes,
                hours,
                seed,
                threads,
                ..
            } => {
                assert_eq!(device, DeviceArg::Knc);
                assert_eq!(workload, WorkloadArg::LavamdKnc);
                assert_eq!((strikes, hours, seed), (500, 10.0, 7));
                assert_eq!(threads, Some(3));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn analyze_parses() {
        assert_eq!(
            parse_ok("analyze"),
            Command::Analyze {
                json: false,
                root: ".".to_string(),
                baseline: None
            }
        );
        assert_eq!(
            parse_ok("analyze --json --root /tmp/ws"),
            Command::Analyze {
                json: true,
                root: "/tmp/ws".to_string(),
                baseline: None
            }
        );
        assert_eq!(
            parse_ok("analyze --baseline ci/analyze-baseline.json"),
            Command::Analyze {
                json: false,
                root: ".".to_string(),
                baseline: Some("ci/analyze-baseline.json".to_string())
            }
        );
        assert!(parse_err("analyze --jsno").0.contains("unknown flag"));
        assert!(parse_err("analyze --baseline").0.contains("expects a path"));
    }

    #[test]
    fn chaos_parses() {
        assert_eq!(
            parse_ok("chaos --cache-dir /tmp/storm"),
            Command::Chaos {
                opts: ChaosOpts {
                    cache_dir: "/tmp/storm".to_string(),
                    seed: 2019,
                    rate: 0.0,
                    crash_at: None,
                    threads: None,
                    retries: 0,
                    resume: false,
                }
            }
        );
        assert_eq!(
            parse_ok(
                "chaos --cache-dir /tmp/storm --chaos-seed 7 --chaos-rate 0.10 \
                 --chaos-crash-at 12 --threads 2 --retries 3 --resume"
            ),
            Command::Chaos {
                opts: ChaosOpts {
                    cache_dir: "/tmp/storm".to_string(),
                    seed: 7,
                    rate: 0.10,
                    crash_at: Some(12),
                    threads: Some(2),
                    retries: 3,
                    resume: true,
                }
            }
        );
        assert!(parse_err("chaos").0.contains("--cache-dir"));
        assert!(parse_err("chaos --cache-dir /tmp/x --chaos-rate 1.5")
            .0
            .contains("[0, 1]"));
        assert!(parse_err("chaos --cache-dir /tmp/x --chaos-rate nan")
            .0
            .contains("[0, 1]"));
        assert!(parse_err("chaos --cache-dir /tmp/x --chaos-crash-at soon")
            .0
            .contains("operation index"));
        assert!(parse_err("chaos --cache-dir /tmp/x --chaos-mode loud")
            .0
            .contains("unknown flag"));
    }

    #[test]
    fn inject_parses() {
        let c = parse_ok("inject --workload micro-fma --precision double --n 300 --model byte");
        assert_eq!(
            c,
            Command::Inject {
                workload: WorkloadArg::MicroFma,
                precision: Precision::Double,
                injections: 300,
                model: ModelArg::Byte,
                seed: 0,
                threads: None,
                retries: 0,
                cell_timeout: None,
                sampling: SamplingOpts::default(),
            }
        );
    }

    #[test]
    fn adaptive_sampling_flags_parse() {
        assert_eq!(
            parse_ok("report --adaptive"),
            Command::Report {
                opts: StudyOpts {
                    sampling: SamplingOpts {
                        adaptive: true,
                        ..SamplingOpts::default()
                    },
                    ..StudyOpts::default()
                }
            }
        );
        assert_eq!(
            parse_ok("figures --paper --adaptive --ci-width 0.3 --strike-budget 5000"),
            Command::Figures {
                opts: StudyOpts {
                    scale: Scale::Paper,
                    sampling: SamplingOpts {
                        adaptive: true,
                        ci_width: Some(0.3),
                        strike_budget: Some(5000),
                    },
                    ..StudyOpts::default()
                }
            }
        );
        assert!(matches!(
            parse_ok(
                "campaign --device fpga --workload mxm --precision half \
                 --strikes 1024 --adaptive --ci-width 0.5"
            ),
            Command::Campaign {
                strikes: 1024,
                sampling: SamplingOpts {
                    adaptive: true,
                    ci_width: Some(w),
                    strike_budget: None,
                },
                ..
            } if w == 0.5
        ));
        assert!(matches!(
            parse_ok("inject --workload lud --precision double --adaptive --strike-budget 800"),
            Command::Inject {
                sampling: SamplingOpts {
                    adaptive: true,
                    ci_width: None,
                    strike_budget: Some(800),
                },
                ..
            }
        ));
        // The refinement flags are meaningless without --adaptive.
        assert!(parse_err("report --ci-width 0.4").0.contains("--adaptive"));
        assert!(parse_err("tables --strike-budget 100")
            .0
            .contains("--adaptive"));
        assert!(parse_err("report --adaptive --ci-width zero")
            .0
            .contains("positive number"));
        assert!(parse_err("report --adaptive --ci-width -0.2")
            .0
            .contains("positive number"));
        assert!(parse_err(
            "inject --workload lud --precision double --adaptive --strike-budget soon"
        )
        .0
        .contains("integer"));
    }

    #[test]
    fn fault_tolerance_flags_parse() {
        assert_eq!(
            parse_ok("report --retries 2 --cell-timeout 5s --cache-dir /tmp/c --resume"),
            Command::Report {
                opts: StudyOpts {
                    retries: 2,
                    cell_timeout: Some(Duration::from_secs(5)),
                    cache_dir: Some("/tmp/c".to_string()),
                    resume: true,
                    ..StudyOpts::default()
                }
            }
        );
        assert!(matches!(
            parse_ok(
                "campaign --device gpu --workload mxm --precision half \
                 --retries 3 --cell-timeout 500ms"
            ),
            Command::Campaign {
                retries: 3,
                cell_timeout: Some(t),
                ..
            } if t == Duration::from_millis(500)
        ));
        assert!(parse_err("report --resume").0.contains("--cache-dir"));
        assert!(parse_err("report --retries lots").0.contains("integer"));
        assert!(parse_err("report --cell-timeout -4s")
            .0
            .contains("positive"));
    }

    #[test]
    fn durations_parse() {
        assert_eq!(duration_of("5s"), Ok(Duration::from_secs(5)));
        assert_eq!(duration_of("500ms"), Ok(Duration::from_millis(500)));
        assert_eq!(duration_of("2.5"), Ok(Duration::from_millis(2500)));
        assert_eq!(duration_of("0.25s"), Ok(Duration::from_millis(250)));
        assert!(duration_of("0").is_err());
        assert!(duration_of("fast").is_err());
        assert!(duration_of("inf").is_err());
    }

    #[test]
    fn helpful_errors() {
        assert!(parse_err("campaign --workload mxm --precision half")
            .0
            .contains("--device"));
        assert!(
            parse_err("campaign --device tpu --workload mxm --precision half")
                .0
                .contains("unknown device")
        );
        assert!(parse_err("inject --workload mxm --precision quad")
            .0
            .contains("unknown precision"));
        assert!(parse_err("frobnicate").0.contains("unknown command"));
        assert!(parse_err("export").0.contains("--dir"));
        assert!(
            parse_err("campaign --device gpu --workload mxm --precision half --strikes lots")
                .0
                .contains("integer")
        );
    }

    #[test]
    fn aliases_resolve() {
        assert!(matches!(
            parse_ok("campaign --device v100 --workload gemm --precision double"),
            Command::Campaign {
                device: DeviceArg::GpuEcc,
                workload: WorkloadArg::Mxm,
                ..
            }
        ));
    }
}
