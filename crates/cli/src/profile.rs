//! Rendering of JSONL observability logs as profile summaries.
//!
//! The study subcommands accept `--profile PATH`, which attaches a
//! [`mpr_obs::JsonlRecorder`] to the run. After the run finishes this
//! module reads the log back from disk (exercising the parse round-trip)
//! and renders per-phase timings, per-cell queue/exec breakdowns, cache
//! effectiveness, and campaign throughput as [`mpr_metrics::Table`]s.

use mpr_metrics::Table;
use mpr_obs::{read_log, summarize, ProfileSummary};
use std::path::Path;

/// Maximum number of cells shown in the "slowest cells" table.
const MAX_CELL_ROWS: usize = 12;

/// Reads the JSONL log at `path` and prints a profile summary.
///
/// Returns `false` (with a message on stderr) if the log cannot be read
/// or parsed; callers treat that as a soft failure so the study output
/// itself is never lost to a profiling problem.
pub fn print_profile(path: &Path) -> bool {
    let events = match read_log(path) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("profile: {e}");
            return false;
        }
    };
    print!("{}", render(&summarize(&events)));
    true
}

/// Renders the full profile summary as a sequence of tables.
pub fn render(summary: &ProfileSummary) -> String {
    let mut out = String::new();
    out.push_str(&overview(summary).to_string());
    out.push('\n');
    if let Some(t) = phases(summary) {
        out.push_str(&t.to_string());
        out.push('\n');
    }
    if let Some(t) = cells(summary) {
        out.push_str(&t.to_string());
        out.push('\n');
    }
    if let Some(t) = throughput(summary) {
        out.push_str(&t.to_string());
        out.push('\n');
    }
    out
}

fn overview(summary: &ProfileSummary) -> Table {
    let mut t = Table::new(vec!["quantity", "value"]).with_title("profile overview");
    t.row(vec!["events".into(), summary.events.to_string()]);
    t.row(vec!["span".into(), format!("{:.3} s", summary.span_s)]);
    for (label, name) in [
        ("cells requested", "plan.requests"),
        ("cells unique", "plan.unique"),
        ("cells dedup-saved", "plan.dedup_saved"),
        ("cache memory hits", "cache.mem_hit"),
        ("cache disk hits", "cache.disk_hit"),
        ("cache misses", "cache.miss"),
        ("golden computed", "golden.compute"),
        ("golden reused", "golden.reuse"),
    ] {
        t.row(vec![label.into(), summary.counter_total(name).to_string()]);
    }
    t
}

fn phases(summary: &ProfileSummary) -> Option<Table> {
    let scopes = summary.scopes_by_time("phase");
    if scopes.is_empty() {
        return None;
    }
    let mut t = Table::new(vec!["phase", "calls", "total", "mean"]).with_title("study phases");
    for (scope, agg) in scopes {
        t.row(vec![
            scope.to_string(),
            agg.count.to_string(),
            format!("{:.3} s", agg.sum),
            format!("{:.3} s", agg.mean()),
        ]);
    }
    Some(t)
}

fn cells(summary: &ProfileSummary) -> Option<Table> {
    let scopes = summary.scopes_by_time("cell.total");
    if scopes.is_empty() {
        return None;
    }
    let shown = scopes.len().min(MAX_CELL_ROWS);
    let mut t = Table::new(vec!["cell", "queue", "exec", "total"]).with_title(format!(
        "slowest cells ({shown} of {} executed)",
        scopes.len()
    ));
    for (scope, total) in scopes.into_iter().take(MAX_CELL_ROWS) {
        t.row(vec![
            scope.to_string(),
            format!("{:.3} s", scoped_time(summary, "cell.queue", scope)),
            format!("{:.3} s", scoped_time(summary, "cell.exec", scope)),
            format!("{:.3} s", total.sum),
        ]);
    }
    Some(t)
}

fn throughput(summary: &ProfileSummary) -> Option<Table> {
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (label, name) in [
        ("beam strikes/s", "beam.strikes_per_s"),
        ("beam worker utilization", "beam.utilization"),
        ("inject strikes/s", "inject.strikes_per_s"),
        ("inject worker utilization", "inject.utilization"),
    ] {
        let scopes = summary.gauge_scopes(name);
        if scopes.is_empty() {
            continue;
        }
        let (count, sum) = scopes
            .iter()
            .fold((0u64, 0.0), |(c, s), (_, a)| (c + a.count, s + a.sum));
        let mean = if count == 0 { 0.0 } else { sum / count as f64 };
        rows.push(vec![label.into(), count.to_string(), format!("{mean:.3}")]);
    }
    if rows.is_empty() {
        return None;
    }
    let mut t = Table::new(vec!["gauge", "campaigns", "mean"]).with_title("campaign throughput");
    for row in rows {
        t.row(row);
    }
    Some(t)
}

/// Total recorded seconds of timer `name` under `scope` (0 if absent).
fn scoped_time(summary: &ProfileSummary, name: &str, scope: &str) -> f64 {
    summary.time_scope(name, scope).map_or(0.0, |agg| agg.sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpr_obs::{summarize, Counter, Gauge, JsonlRecorder, Timer};

    fn sample_recorder() -> JsonlRecorder {
        let rec = JsonlRecorder::new();
        Counter::new(&rec, "plan.requests", "").add(6);
        Counter::new(&rec, "plan.unique", "").add(4);
        Counter::new(&rec, "plan.dedup_saved", "").add(2);
        Counter::new(&rec, "cache.miss", "dev=a").add(1);
        let t = Timer::start(&rec, "cell.total", "dev=a");
        t.stop();
        let t = Timer::start(&rec, "cell.exec", "dev=a");
        t.stop();
        let t = Timer::start(&rec, "phase", "fig3_fpga_fit");
        t.stop();
        Gauge::new(&rec, "beam.strikes_per_s", "dev=a").set(123.4);
        rec
    }

    #[test]
    fn render_includes_all_sections() {
        let rec = sample_recorder();
        let out = render(&summarize(&rec.events()));
        assert!(out.contains("profile overview"));
        assert!(out.contains("study phases"));
        assert!(out.contains("fig3_fpga_fit"));
        assert!(out.contains("slowest cells (1 of 1 executed)"));
        assert!(out.contains("campaign throughput"));
        assert!(out.contains("beam strikes/s"));
        assert!(out.contains("cells dedup-saved"));
    }

    #[test]
    fn render_on_empty_log_keeps_only_overview() {
        let out = render(&summarize(&[]));
        assert!(out.contains("profile overview"));
        assert!(!out.contains("study phases"));
        assert!(!out.contains("slowest cells"));
        assert!(!out.contains("campaign throughput"));
    }

    #[test]
    fn print_profile_round_trips_a_log_on_disk() {
        let path =
            std::env::temp_dir().join(format!("mpr_cli_profile_{}.jsonl", std::process::id()));
        let rec = sample_recorder();
        std::fs::write(&path, rec.to_jsonl()).expect("write log");
        assert!(print_profile(&path));
        std::fs::remove_file(&path).ok();
        assert!(!print_profile(&path), "missing log is a soft failure");
    }
}
