//! The experiment engine: plans, deduplication, and the cross-cell
//! work pool.

use crate::cell::{CellKey, CellKind};
use crate::store::{AccumulateOutcome, CellResult, LookupSource, ResultStore};
use mpr_beam::{BeamCampaign, BeamSession};
use mpr_fault::hook::MultiStrikeHook;
use mpr_fault::{InjectionCampaign, ValueFault};
use mpr_obs::{Counter, Metric, NullRecorder, Recorder, SplitMix, Timer};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// An ordered list of requested cells.
///
/// Push every cell a figure needs — duplicates are welcome and cheap:
/// the engine executes each *unique* cell once and hands every
/// requester a copy. Results come back in request order.
#[derive(Debug, Default, Clone)]
pub struct ExperimentPlan {
    cells: Vec<CellKey>,
}

impl ExperimentPlan {
    /// An empty plan.
    pub fn new() -> ExperimentPlan {
        ExperimentPlan::default()
    }

    /// Requests a cell; returns its index into the result vector.
    pub fn push(&mut self, key: CellKey) -> usize {
        self.cells.push(key);
        self.cells.len() - 1
    }

    /// The requested cells, in request order.
    pub fn cells(&self) -> &[CellKey] {
        &self.cells
    }

    /// Number of requested cells (duplicates included).
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Number of *unique* cells the plan would execute.
    pub fn unique_count(&self) -> usize {
        let mut seen: BTreeMap<String, ()> = BTreeMap::new();
        for c in &self.cells {
            seen.insert(c.canonical(), ());
        }
        seen.len()
    }
}

/// Executes experiment plans against a [`ResultStore`].
///
/// The engine owns the study's base seed and thread budget. Every cell
/// derives its RNG stream from `(base seed, cell key)` alone, and the
/// campaign layers are thread-count invariant, so results are
/// bit-identical for any thread count and any request order.
#[derive(Clone)]
pub struct Engine {
    seed: u64,
    threads: usize,
    store: Arc<ResultStore>,
    recorder: Arc<dyn Recorder>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("seed", &self.seed)
            .field("threads", &self.threads)
            .field("store", &self.store)
            .finish()
    }
}

impl Engine {
    /// An engine with a fresh in-memory store and automatic threading.
    pub fn new(seed: u64) -> Engine {
        Engine {
            seed,
            threads: 0,
            store: Arc::new(ResultStore::in_memory()),
            recorder: Arc::new(NullRecorder),
        }
    }

    /// Overrides the worker-thread budget (0 = available parallelism).
    pub fn with_threads(mut self, threads: usize) -> Engine {
        self.threads = threads;
        self
    }

    /// Attaches a (possibly shared, possibly disk-backed) result store.
    pub fn with_store(mut self, store: Arc<ResultStore>) -> Engine {
        self.store = store;
        self
    }

    /// Attaches an observability recorder; the engine and the campaigns
    /// it runs record plan, cache, timing, and throughput events into
    /// it. Telemetry never perturbs RNG streams or results.
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Engine {
        self.recorder = recorder;
        self
    }

    /// The attached observability recorder.
    pub fn recorder(&self) -> &Arc<dyn Recorder> {
        &self.recorder
    }

    /// The engine's base seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The engine's result store.
    pub fn store(&self) -> &Arc<ResultStore> {
        &self.store
    }

    /// The resolved worker-thread count.
    pub fn threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism().map_or(4, |n| n.get()),
            n => n,
        }
    }

    /// Runs a plan: dedups the requested cells, executes the unique
    /// misses in parallel across cells, and returns one result per
    /// request, in request order.
    pub fn run(&self, plan: &ExperimentPlan) -> Vec<CellResult> {
        let rec = &*self.recorder;
        let wall = Timer::start(rec, "plan.wall", "");
        // Dedup while preserving first-seen order.
        let mut unique: Vec<&CellKey> = Vec::new();
        let mut canonicals: Vec<String> = Vec::new();
        let mut index_of: BTreeMap<String, usize> = BTreeMap::new();
        let mut request_to_unique = Vec::with_capacity(plan.len());
        for key in plan.cells() {
            let canonical = key.canonical();
            let idx = *index_of.entry(canonical.clone()).or_insert_with(|| {
                unique.push(key);
                canonicals.push(canonical);
                unique.len() - 1
            });
            request_to_unique.push(idx);
        }
        Counter::new(rec, "plan.requests", "").add(plan.len() as u64);
        Counter::new(rec, "plan.unique", "").add(unique.len() as u64);
        Counter::new(rec, "plan.dedup_saved", "").add((plan.len() - unique.len()) as u64);

        // Resolve what the store already knows.
        let mut slots: Vec<Option<CellResult>> = unique
            .iter()
            .enumerate()
            .map(|(i, key)| {
                let (hit, source) = self
                    .store
                    .lookup_traced(&ResultStore::store_key(self.seed, key));
                let counter = match source {
                    LookupSource::Memory => "cache.mem_hit",
                    LookupSource::Disk => "cache.disk_hit",
                    LookupSource::Miss => "cache.miss",
                };
                Counter::new(rec, counter, &canonicals[i]).incr();
                hit
            })
            .collect();
        let pending: Vec<usize> = (0..unique.len()).filter(|&i| slots[i].is_none()).collect();

        if !pending.is_empty() {
            let threads = self.threads();
            let outer = threads.min(pending.len());
            // Campaigns are thread-count invariant, so leftover budget
            // can safely parallelize *inside* the cells.
            let inner = (threads / outer).max(1);
            let next = AtomicUsize::new(0);
            let fresh: Vec<Mutex<Option<CellResult>>> =
                pending.iter().map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..outer {
                    scope.spawn(|| loop {
                        let j = next.fetch_add(1, Ordering::Relaxed);
                        if j >= pending.len() {
                            break;
                        }
                        let key = unique[pending[j]];
                        let canonical = canonicals[pending[j]].as_str();
                        // Queue time: how long the cell waited from plan
                        // start until a worker picked it up.
                        let queued_s = wall.elapsed_s();
                        if rec.enabled() {
                            rec.record("cell.queue", canonical, Metric::Time(queued_s));
                        }
                        let exec = Timer::start(rec, "cell.exec", canonical);
                        let result = self.execute(key, inner, canonical);
                        let exec_s = exec.stop();
                        if rec.enabled() {
                            rec.record("cell.total", canonical, Metric::Time(queued_s + exec_s));
                        }
                        self.store
                            .insert(&ResultStore::store_key(self.seed, key), result.clone());
                        // mpr-allow: panic-hygiene -- a poisoned slot lock means a sibling worker already panicked
                        *fresh[j].lock().expect("result slot") = Some(result);
                    });
                }
            });
            for (j, cell) in fresh.into_iter().enumerate() {
                // mpr-allow: panic-hygiene -- the scope joined every worker; a poisoned slot means one panicked
                let filled = cell.into_inner().expect("result slot");
                // mpr-allow: panic-hygiene -- each slot was filled exactly once before the scope exited
                slots[pending[j]] = Some(filled.expect("worker filled slot"));
            }
        }

        request_to_unique
            .into_iter()
            // mpr-allow: panic-hygiene -- every unique slot is Some by construction after execution
            .map(|i| slots[i].clone().expect("resolved cell"))
            .collect()
    }

    /// Convenience: runs a single cell through the store.
    pub fn run_one(&self, key: &CellKey) -> CellResult {
        let mut plan = ExperimentPlan::new();
        plan.push(key.clone());
        // mpr-allow: panic-hygiene -- a one-cell plan returns exactly one result
        self.run(&plan).into_iter().next().expect("one result")
    }

    /// Executes one cell with `inner` worker threads inside the
    /// campaign. This is the only place campaigns are constructed.
    fn execute(&self, key: &CellKey, inner: usize, canonical: &str) -> CellResult {
        let rec = &*self.recorder;
        let seed = key.cell_seed(self.seed);
        let workload = key.workload.build();
        let golden_key = key.workload.golden_key(key.precision);
        let memoized_golden = |store: &ResultStore| {
            let computed = AtomicBool::new(false);
            let golden = store.golden(&golden_key, || {
                computed.store(true, Ordering::Relaxed);
                workload.run_golden(key.precision)
            });
            let counter = if computed.load(Ordering::Relaxed) {
                "golden.compute"
            } else {
                "golden.reuse"
            };
            Counter::new(rec, counter, &golden_key).incr();
            golden
        };
        match key.kind {
            CellKind::Beam {
                hours,
                target_candidates,
                classifier,
            } => {
                let device = key.device.build();
                let profile = key.workload.profile(key.device);
                let golden = memoized_golden(&self.store);
                let session = BeamSession {
                    hours,
                    target_candidates,
                    seed,
                    threads: inner,
                };
                let mut campaign =
                    BeamCampaign::new(device.as_ref(), workload.as_ref(), &profile, key.precision)
                        .session(session)
                        .golden(&golden)
                        .telemetry(rec, canonical);
                if let Some(classify) = classifier.classifier() {
                    campaign = campaign.classifier(classify);
                }
                CellResult::Beam(campaign.run())
            }
            CellKind::Inject {
                injections,
                model,
                live_fraction,
            } => {
                let golden = memoized_golden(&self.store);
                CellResult::Inject(
                    InjectionCampaign::new(workload.as_ref(), key.precision)
                        .injections(injections)
                        .seed(seed)
                        .model(model)
                        .live_fraction(live_fraction)
                        .threads(inner)
                        .golden(&golden)
                        .telemetry(rec, canonical)
                        .run(),
                )
            }
            CellKind::Accumulate { faults, trials } => {
                let golden = memoized_golden(&self.store);
                let sites = workload.site_count(key.precision);
                let width = key.precision.total_bits();
                let mut rng = SplitMix::new(seed);
                let mut sdc = 0u64;
                let mut corrupted_sum = 0.0;
                for _ in 0..trials {
                    let strikes: Vec<(u64, ValueFault)> = (0..faults)
                        .map(|_| {
                            let site = rng.next_u64() % sites;
                            let bit = (rng.next_u64() % width as u64) as u32;
                            let fault = if rng.next_u64().is_multiple_of(2) {
                                ValueFault::StuckHigh(bit)
                            } else {
                                ValueFault::StuckLow(bit)
                            };
                            (site, fault)
                        })
                        .collect();
                    let mut hook = MultiStrikeHook::new(strikes);
                    let out = workload.dispatch(key.precision, &mut hook);
                    let corrupted = out
                        .iter()
                        .zip(golden.iter())
                        .filter(|(a, b)| a.to_bits() != b.to_bits())
                        .count();
                    if corrupted > 0 {
                        sdc += 1;
                        corrupted_sum += corrupted as f64 / golden.len().max(1) as f64;
                    }
                }
                CellResult::Accumulate(AccumulateOutcome {
                    sdc_probability: sdc as f64 / trials.max(1) as f64,
                    corruption_extent: if sdc > 0 {
                        corrupted_sum / sdc as f64
                    } else {
                        0.0
                    },
                    trials,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{ClassifierId, DeviceId, WorkloadId};
    use mpr_fault::FaultModel;
    use mpr_softfloat::Precision;

    fn micro_cell(p: Precision) -> CellKey {
        CellKey {
            device: DeviceId::TitanV,
            workload: WorkloadId::Micro {
                op: mpr_kernels::MicroKernelOp::Add,
                threads: 8,
                iters: 32,
            },
            precision: p,
            kind: CellKind::Beam {
                hours: 10.0,
                target_candidates: 80,
                classifier: ClassifierId::None,
            },
        }
    }

    #[test]
    fn duplicate_requests_execute_once() {
        let engine = Engine::new(3);
        let mut plan = ExperimentPlan::new();
        plan.push(micro_cell(Precision::Single));
        plan.push(micro_cell(Precision::Single));
        plan.push(micro_cell(Precision::Half));
        assert_eq!(plan.unique_count(), 2);
        let results = engine.run(&plan);
        assert_eq!(results.len(), 3);
        assert_eq!(engine.store().executed(), 2);
        // The duplicate requests received the same outcome.
        assert_eq!(
            results[0].beam().sdc.events(),
            results[1].beam().sdc.events()
        );
    }

    #[test]
    fn rerun_is_served_from_memory() {
        let engine = Engine::new(5);
        let key = CellKey {
            device: DeviceId::Knc3120a,
            workload: WorkloadId::Lud { dim: 10 },
            precision: Precision::Double,
            kind: CellKind::Inject {
                injections: 40,
                model: FaultModel::SingleBit,
                live_fraction: 1.0,
            },
        };
        let a = engine.run_one(&key);
        let b = engine.run_one(&key);
        assert_eq!(engine.store().executed(), 1);
        assert!(engine.store().mem_hits() >= 1);
        assert_eq!(a.inject().counts, b.inject().counts);
    }

    #[test]
    fn thread_counts_do_not_change_results() {
        let run = |threads| {
            let engine = Engine::new(11).with_threads(threads);
            let mut plan = ExperimentPlan::new();
            plan.push(micro_cell(Precision::Single));
            plan.push(micro_cell(Precision::Double));
            let r = engine.run(&plan);
            (
                r[0].beam().sdc.events(),
                r[1].beam().sdc.events(),
                r[0].beam().severities.len(),
            )
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(8));
    }

    #[test]
    fn accumulation_cells_execute() {
        let engine = Engine::new(7);
        let key = CellKey {
            device: DeviceId::Zynq7000,
            workload: WorkloadId::Gemm { dim: 8 },
            precision: Precision::Half,
            kind: CellKind::Accumulate {
                faults: 16,
                trials: 10,
            },
        };
        let r = engine.run_one(&key);
        let acc = r.accumulate();
        assert!(acc.sdc_probability > 0.5, "{acc:?}");
        assert_eq!(acc.trials, 10);
    }
}
