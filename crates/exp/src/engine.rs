//! The experiment engine: plans, deduplication, the cross-cell work
//! pool, and the fault-tolerance harness (per-cell isolation, watchdog
//! timeouts, deterministic retry, and the resume manifest).

use crate::cell::{CellKey, CellKind};
use crate::failure::{failure_table, CellFailure, FailureKind};
use crate::manifest::{CellState, CellStatus, Manifest};
use crate::store::{AccumulateOutcome, CellResult, LookupSource, ResultStore};
use mpr_beam::{BeamCampaign, BeamSession};
use mpr_fault::hook::MultiStrikeHook;
use mpr_fault::{CampaignError, InjectionCampaign, ValueFault};
use mpr_metrics::sampling::{largest_remainder, rel_ci_width, SamplingPlan};
use mpr_obs::{
    fnv1a64, panic_message, CancelToken, Counter, Metric, NullRecorder, Recorder, SplitMix, Timer,
};
use std::collections::BTreeMap;
use std::panic::AssertUnwindSafe;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// An ordered list of requested cells.
///
/// Push every cell a figure needs — duplicates are welcome and cheap:
/// the engine executes each *unique* cell once and hands every
/// requester a copy. Results come back in request order.
#[derive(Debug, Default, Clone)]
pub struct ExperimentPlan {
    cells: Vec<CellKey>,
}

impl ExperimentPlan {
    /// An empty plan.
    pub fn new() -> ExperimentPlan {
        ExperimentPlan::default()
    }

    /// Requests a cell; returns its index into the result vector.
    pub fn push(&mut self, key: CellKey) -> usize {
        self.cells.push(key);
        self.cells.len() - 1
    }

    /// The requested cells, in request order.
    pub fn cells(&self) -> &[CellKey] {
        &self.cells
    }

    /// Number of requested cells (duplicates included).
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Number of *unique* cells the plan would execute.
    pub fn unique_count(&self) -> usize {
        let mut seen: BTreeMap<String, ()> = BTreeMap::new();
        for c in &self.cells {
            seen.insert(c.canonical(), ());
        }
        seen.len()
    }
}

/// One unique cell's outcome plus the attempts its last run made
/// (0 = served from cache, never re-executed this run).
type CellOutcome = (Result<CellResult, CellFailure>, u32);

/// Executes experiment plans against a [`ResultStore`].
///
/// The engine owns the study's base seed and thread budget. Every cell
/// derives its RNG stream from `(base seed, cell key)` alone, and the
/// campaign layers are thread-count invariant, so results are
/// bit-identical for any thread count and any request order.
///
/// # Fault tolerance
///
/// Each cell body runs isolated under `catch_unwind`: a panicking or
/// hung cell becomes a structured [`CellFailure`] in that cell's slot
/// while every healthy cell in the plan still completes. Failed cells
/// are retried up to [`Engine::with_retries`] times with the *same*
/// per-cell seed — a successful retry is byte-identical to an
/// untroubled first run. [`Engine::with_cell_timeout`] arms the paper's
/// board-watchdog analogue: a cell exceeding the deadline is cancelled
/// cooperatively at strike-batch granularity and recorded as hung.
/// When a disk cache is attached, a `manifest.json` ledger records
/// per-cell status so `--resume` runs re-execute exactly the
/// failed/missing subset.
#[derive(Clone)]
pub struct Engine {
    seed: u64,
    threads: usize,
    retries: u32,
    cell_timeout: Option<Duration>,
    cancel: CancelToken,
    store: Arc<ResultStore>,
    recorder: Arc<dyn Recorder>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("seed", &self.seed)
            .field("threads", &self.threads)
            .field("retries", &self.retries)
            .field("cell_timeout", &self.cell_timeout)
            .field("store", &self.store)
            .finish()
    }
}

impl Engine {
    /// An engine with a fresh in-memory store and automatic threading.
    pub fn new(seed: u64) -> Engine {
        Engine {
            seed,
            threads: 0,
            retries: 0,
            cell_timeout: None,
            cancel: CancelToken::unlimited(),
            store: Arc::new(ResultStore::in_memory()),
            recorder: Arc::new(NullRecorder),
        }
    }

    /// Overrides the worker-thread budget (0 = available parallelism).
    pub fn with_threads(mut self, threads: usize) -> Engine {
        self.threads = threads;
        self
    }

    /// Number of times a failed or hung cell is re-attempted (default
    /// 0). Retries reuse the cell's seed unchanged, so determinism
    /// invariant DT001 holds: a retry that succeeds is byte-identical
    /// to a first run that never failed.
    pub fn with_retries(mut self, retries: u32) -> Engine {
        self.retries = retries;
        self
    }

    /// Arms a per-cell watchdog deadline (`None` = no deadline, the
    /// default). A cell attempt exceeding it is cancelled at the next
    /// strike-batch boundary — no thread is ever detached — and
    /// recorded as hung.
    pub fn with_cell_timeout(mut self, timeout: Option<Duration>) -> Engine {
        self.cell_timeout = timeout;
        self
    }

    /// Attaches a plan-level shutdown token: firing it (from a signal
    /// thread, another worker, or a deadline) makes the engine stop
    /// claiming new cells, lets in-flight cells cancel cooperatively at
    /// their next batch boundary, and still flushes the campaign
    /// manifest — so an interrupted run is always resumable. This is
    /// the process's SIGINT analogue: the workspace is `unsafe`-free,
    /// so an actual signal handler cannot be installed; a front end
    /// that catches SIGINT fires this token instead.
    pub fn with_cancel_token(mut self, cancel: CancelToken) -> Engine {
        self.cancel = cancel;
        self
    }

    /// The plan-level shutdown token (see [`Engine::with_cancel_token`]).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Attaches a (possibly shared, possibly disk-backed) result store.
    pub fn with_store(mut self, store: Arc<ResultStore>) -> Engine {
        self.store = store;
        self
    }

    /// Attaches an observability recorder; the engine and the campaigns
    /// it runs record plan, cache, timing, and throughput events into
    /// it. Telemetry never perturbs RNG streams or results.
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Engine {
        self.recorder = recorder;
        self
    }

    /// The attached observability recorder.
    pub fn recorder(&self) -> &Arc<dyn Recorder> {
        &self.recorder
    }

    /// The engine's base seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The engine's result store.
    pub fn store(&self) -> &Arc<ResultStore> {
        &self.store
    }

    /// The configured retry budget per cell.
    pub fn retries(&self) -> u32 {
        self.retries
    }

    /// The configured per-cell watchdog deadline.
    pub fn cell_timeout(&self) -> Option<Duration> {
        self.cell_timeout
    }

    /// The resolved worker-thread count.
    pub fn threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism().map_or(4, |n| n.get()),
            n => n,
        }
    }

    /// Runs a plan: dedups the requested cells, executes the unique
    /// misses in parallel across cells, and returns one result per
    /// request, in request order.
    ///
    /// # Panics
    ///
    /// Panics with a rendered per-cell failure table if any cell
    /// exhausts its attempts. Figures and tables are pure views over a
    /// fully resolved plan, so for them an unresolved cell is fatal by
    /// design; callers that must survive partial failure (the CLI's
    /// campaign commands, the hostile-harness example) use
    /// [`Engine::try_run`]. Healthy cells are already written through
    /// to the disk cache before this panic, so a later `--resume` run
    /// re-executes only the failed subset.
    pub fn run(&self, plan: &ExperimentPlan) -> Vec<CellResult> {
        let results = self.try_run(plan);
        let mut failures: Vec<CellFailure> = Vec::new();
        for failed in results.iter().filter_map(|r| r.as_ref().err()) {
            if !failures.iter().any(|seen| seen.cell == failed.cell) {
                failures.push(failed.clone());
            }
        }
        if !failures.is_empty() {
            panic!(
                "{} of {} cells failed\n{}",
                failures.len(),
                plan.unique_count(),
                failure_table(&failures)
            );
        }
        results.into_iter().filter_map(Result::ok).collect()
    }

    /// Runs a plan fault-tolerantly: every healthy cell completes and
    /// returns `Ok`; each cell that exhausted its attempt budget
    /// returns `Err` with its structured failure. Results come back in
    /// request order (duplicate requests of a failed cell share the
    /// failure). When the store has a cache directory, the campaign
    /// manifest is updated with every cell's status.
    pub fn try_run(&self, plan: &ExperimentPlan) -> Vec<Result<CellResult, CellFailure>> {
        let rec = &*self.recorder;
        let wall = Timer::start(rec, "plan.wall", "");
        // Dedup while preserving first-seen order.
        let mut unique: Vec<&CellKey> = Vec::new();
        let mut canonicals: Vec<String> = Vec::new();
        let mut index_of: BTreeMap<String, usize> = BTreeMap::new();
        let mut request_to_unique = Vec::with_capacity(plan.len());
        for key in plan.cells() {
            let canonical = key.canonical();
            let idx = *index_of.entry(canonical.clone()).or_insert_with(|| {
                unique.push(key);
                canonicals.push(canonical);
                unique.len() - 1
            });
            request_to_unique.push(idx);
        }
        let store_keys: Vec<String> = unique
            .iter()
            .map(|key| ResultStore::store_key(self.seed, key))
            .collect();
        Counter::new(rec, "plan.requests", "").add(plan.len() as u64);
        Counter::new(rec, "plan.unique", "").add(unique.len() as u64);
        Counter::new(rec, "plan.dedup_saved", "").add((plan.len() - unique.len()) as u64);
        let swept = self.store.take_tmp_swept();
        if swept > 0 {
            Counter::new(rec, "engine.cache_tmp_swept", "").add(swept);
        }

        // Resolve what the store already knows.
        let mut slots: Vec<Option<CellOutcome>> = store_keys
            .iter()
            .enumerate()
            .map(|(i, store_key)| {
                let (hit, source) = self.store.lookup_traced(store_key);
                let counter = match source {
                    LookupSource::Memory => "cache.mem_hit",
                    LookupSource::Disk => "cache.disk_hit",
                    LookupSource::Miss => "cache.miss",
                    LookupSource::CorruptQuarantined => {
                        Counter::new(rec, "engine.cache_quarantined", &canonicals[i]).incr();
                        "cache.miss"
                    }
                };
                Counter::new(rec, counter, &canonicals[i]).incr();
                hit.map(|result| (Ok(result), 0))
            })
            .collect();
        let pending: Vec<usize> = (0..unique.len()).filter(|&i| slots[i].is_none()).collect();

        if !pending.is_empty() {
            let threads = self.threads();
            let outer = threads.min(pending.len());
            // Campaigns are thread-count invariant, so leftover budget
            // can safely parallelize *inside* the cells.
            let inner = (threads / outer).max(1);
            let next = AtomicUsize::new(0);
            let fresh: Vec<Mutex<Option<CellOutcome>>> =
                pending.iter().map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..outer {
                    scope.spawn(|| loop {
                        // Graceful shutdown: stop claiming new cells
                        // once the plan token fires; already-claimed
                        // cells cancel themselves at their next batch
                        // boundary via their child token.
                        if self.cancel.is_cancelled() {
                            break;
                        }
                        let j = next.fetch_add(1, Ordering::Relaxed);
                        if j >= pending.len() {
                            break;
                        }
                        let key = unique[pending[j]];
                        let canonical = canonicals[pending[j]].as_str();
                        // Queue time: how long the cell waited from plan
                        // start until a worker picked it up.
                        let queued_s = wall.elapsed_s();
                        if rec.enabled() {
                            rec.record("cell.queue", canonical, Metric::Time(queued_s));
                        }
                        let exec = Timer::start(rec, "cell.exec", canonical);
                        let outcome = self.execute_with_recovery(key, inner, canonical);
                        let exec_s = exec.stop();
                        if rec.enabled() {
                            rec.record("cell.total", canonical, Metric::Time(queued_s + exec_s));
                        }
                        if let (Ok(result), _) = &outcome {
                            if let Err(e) =
                                self.store.insert(&store_keys[pending[j]], result.clone())
                            {
                                Counter::new(rec, "engine.cache_write_failed", canonical).incr();
                                eprintln!(
                                    "mpr-exp: failed to write cache entry for {canonical}: {e}"
                                );
                            }
                        }
                        // mpr-allow: panic-hygiene -- a poisoned slot lock means a sibling worker already panicked
                        *fresh[j].lock().expect("result slot") = Some(outcome);
                    });
                }
            });
            for (j, cell) in fresh.into_iter().enumerate() {
                // mpr-allow: panic-hygiene -- the scope joined every worker; a poisoned slot means one panicked
                let filled = cell.into_inner().expect("result slot");
                // A slot no worker claimed means the shutdown token
                // fired first: the cell consumed no attempts and is
                // recorded cancelled, fully resumable.
                slots[pending[j]] = Some(filled.unwrap_or_else(|| {
                    Counter::new(rec, "engine.cell_cancelled", &canonicals[pending[j]]).incr();
                    (
                        Err(CellFailure {
                            cell: canonicals[pending[j]].clone(),
                            attempts: 0,
                            kind: FailureKind::Cancelled,
                        }),
                        0,
                    )
                }));
            }
        }

        // Cross-cell budget reallocation (adaptive cells only): strikes
        // that converged cells left unspent flow to the plan's noisiest
        // unconverged cells, which rerun with a boosted budget under a
        // *new* cell key (a bigger budget is a different experiment, so
        // it caches separately). The grant schedule is a pure function
        // of the phase-1 results, so the two-phase run inherits their
        // determinism across thread counts and cache temperatures.
        self.reallocate_spare_budget(&unique, &mut slots);

        if let Some(dir) = self.store.cache_dir() {
            self.write_manifest(dir, &store_keys, &slots);
        }

        request_to_unique
            .into_iter()
            // mpr-allow: panic-hygiene -- every unique slot is Some by construction after execution
            .map(|i| slots[i].clone().expect("resolved cell").0)
            .collect()
    }

    /// Convenience: runs a single cell through the store.
    ///
    /// # Panics
    ///
    /// Panics with the rendered failure table if the cell exhausts its
    /// attempts (see [`Engine::run`]).
    pub fn run_one(&self, key: &CellKey) -> CellResult {
        let mut plan = ExperimentPlan::new();
        plan.push(key.clone());
        self.run(&plan).into_iter().next().expect("one result")
    }

    /// Convenience: runs a single cell fault-tolerantly.
    pub fn try_run_one(&self, key: &CellKey) -> Result<CellResult, CellFailure> {
        let mut plan = ExperimentPlan::new();
        plan.push(key.clone());
        // mpr-allow: panic-hygiene -- a one-cell plan returns exactly one result
        self.try_run(&plan).into_iter().next().expect("one result")
    }

    /// Phase-2 budget reallocation across a resolved plan (see
    /// [`Engine::try_run`]). Converged adaptive cells donate their
    /// unspent strikes to a plan-level pool; the pool is apportioned
    /// over the unconverged adaptive cells by largest-remainder
    /// rounding on their CI widths (noisier cells draw more), and each
    /// granted cell reruns with its budget raised by the grant. A
    /// failed boost never degrades the plan — the phase-1 result stays
    /// in its slot.
    fn reallocate_spare_budget(&self, unique: &[&CellKey], slots: &mut [Option<CellOutcome>]) {
        let rec = &*self.recorder;
        if self.cancel.is_cancelled() {
            return;
        }
        let mut pool: u64 = 0;
        // (unique index, effective strike budget, noisiness weight)
        let mut needy: Vec<(usize, u64, f64)> = Vec::new();
        for (i, key) in unique.iter().enumerate() {
            let SamplingPlan::Adaptive(config) = key.kind.sampling() else {
                continue;
            };
            let Some((Ok(result), _)) = slots[i].as_ref() else {
                continue;
            };
            let (budget, executed, width) = match result {
                CellResult::Beam(r) => (
                    config.budget.unwrap_or(r.candidates),
                    r.executed,
                    rel_ci_width(r.sdc.events()),
                ),
                CellResult::Inject(r) => {
                    let CellKind::Inject { injections, .. } = key.kind else {
                        continue;
                    };
                    (
                        config.budget.unwrap_or(injections),
                        r.counts.total(),
                        rel_ci_width(r.counts.sdc),
                    )
                }
                CellResult::Accumulate(_) => continue,
            };
            if width <= config.ci_width {
                pool += budget.saturating_sub(executed);
            } else {
                // Noisiness rank: a zero-event cell (infinite width)
                // outranks every finite width, which tops out near 3.9
                // at one observed event.
                let weight = if width.is_finite() { width } else { 4.0 };
                needy.push((i, budget, weight));
            }
        }
        if pool == 0 || needy.is_empty() {
            return;
        }
        let weights: Vec<f64> = needy.iter().map(|&(_, _, w)| w).collect();
        let grants = largest_remainder(&weights, pool);
        Counter::new(rec, "plan.realloc_pool", "").add(pool);
        let inner = self.threads();
        for (&(i, budget, _), &extra) in needy.iter().zip(&grants) {
            if extra == 0 || self.cancel.is_cancelled() {
                continue;
            }
            let key = unique[i];
            let boosted = CellKey {
                kind: key.kind.with_sampling_budget(budget + extra),
                ..key.clone()
            };
            let canonical = boosted.canonical();
            Counter::new(rec, "plan.realloc_granted", &canonical).add(extra);
            let store_key = ResultStore::store_key(self.seed, &boosted);
            let (hit, source) = self.store.lookup_traced(&store_key);
            let counter = match source {
                LookupSource::Memory => "cache.mem_hit",
                LookupSource::Disk => "cache.disk_hit",
                LookupSource::Miss | LookupSource::CorruptQuarantined => "cache.miss",
            };
            Counter::new(rec, counter, &canonical).incr();
            let outcome = match hit {
                Some(result) => (Ok(result), 0),
                None => {
                    let exec = Timer::start(rec, "cell.exec", &canonical);
                    let outcome = self.execute_with_recovery(&boosted, inner, &canonical);
                    exec.stop();
                    if let (Ok(result), _) = &outcome {
                        if let Err(e) = self.store.insert(&store_key, result.clone()) {
                            Counter::new(rec, "engine.cache_write_failed", &canonical).incr();
                            eprintln!("mpr-exp: failed to write cache entry for {canonical}: {e}");
                        }
                    }
                    outcome
                }
            };
            if outcome.0.is_ok() {
                slots[i] = Some(outcome);
            }
        }
    }

    /// Merges this run's per-cell statuses into the cache directory's
    /// campaign manifest (cells recorded by other plans survive).
    fn write_manifest(&self, dir: &Path, store_keys: &[String], slots: &[Option<CellOutcome>]) {
        // Plan hash: order-independent over the unique store keys, so
        // figure reordering does not read as a different campaign.
        let mut sorted: Vec<&str> = store_keys.iter().map(String::as_str).collect();
        sorted.sort_unstable();
        let mut hashed = String::new();
        for key in sorted {
            hashed.push_str(key);
            hashed.push('\n');
        }
        let plan_hash = fnv1a64(hashed.as_bytes());
        let vfs = self.store.vfs();
        let (prior, quarantined) = Manifest::load_traced(vfs.as_ref(), dir);
        if quarantined {
            Counter::new(&*self.recorder, "engine.manifest_quarantined", "").incr();
        }
        let mut manifest = prior.unwrap_or_else(|| Manifest::new(plan_hash));
        manifest.plan_hash = plan_hash;
        for (store_key, slot) in store_keys.iter().zip(slots) {
            let Some((result, attempts)) = slot else {
                continue;
            };
            let status = match result {
                Ok(_) => CellStatus {
                    state: CellState::Ok,
                    attempts: *attempts,
                    detail: String::new(),
                },
                Err(failure) => CellStatus {
                    state: match failure.kind {
                        FailureKind::Hung { .. } => CellState::Hung,
                        FailureKind::Panicked { .. } => CellState::Failed,
                        FailureKind::Cancelled => CellState::Cancelled,
                    },
                    attempts: *attempts,
                    detail: failure.kind.to_string(),
                },
            };
            manifest.record(store_key.clone(), status);
        }
        if let Err(e) = manifest.save_on(vfs.as_ref(), dir) {
            eprintln!(
                "mpr-exp: failed to write campaign manifest in {}: {e}",
                dir.display()
            );
        }
    }

    /// Executes one cell under the isolation harness: `catch_unwind`
    /// per attempt, a fresh watchdog token per attempt, and up to
    /// `retries` re-attempts with the unchanged per-cell seed.
    fn execute_with_recovery(&self, key: &CellKey, inner: usize, canonical: &str) -> CellOutcome {
        let rec = &*self.recorder;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            // The attempt's watchdog is a *child* of the plan token: a
            // plan-level shutdown reaches every in-flight cell at its
            // next batch-boundary poll, while a per-cell deadline never
            // touches the plan.
            let token = self.cancel.child(self.cell_timeout);
            // Unwind safety, without `unsafe` (the workspace forbids
            // it): `catch_unwind` wants `UnwindSafe`, which `&self`
            // is not because `dyn Recorder` may hold interior
            // mutability. The safe `AssertUnwindSafe` wrapper is sound
            // here because an aborted attempt cannot leave observable
            // broken state:
            // * results reach the store only after the cell body has
            //   returned, so no partial result is ever published;
            // * golden outputs are computed outside the store's lock
            //   and inserted only on success, so the goldens map never
            //   holds a partial vector;
            // * the store's mutexes poison only if their *holder*
            //   panics, and every lock region is a short insert/clone
            //   — cell bodies run lock-free;
            // * the recorder is append-only telemetry; a lost or
            //   duplicated event never feeds back into results.
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                self.execute(key, inner, canonical, &token)
            }));
            let kind = match outcome {
                Ok(Ok(result)) => return (Ok(result), attempt),
                Ok(Err(CampaignError::Cancelled)) => {
                    // Disambiguate who fired: a plan-level shutdown is
                    // not a hang, consumes no retry, and ends the cell
                    // immediately in a resumable state.
                    if self.cancel.is_cancelled() {
                        Counter::new(rec, "engine.cell_cancelled", canonical).incr();
                        return (
                            Err(CellFailure {
                                cell: canonical.to_string(),
                                attempts: attempt,
                                kind: FailureKind::Cancelled,
                            }),
                            attempt,
                        );
                    }
                    FailureKind::Hung {
                        timeout_s: token.timeout_s().unwrap_or(0.0),
                    }
                }
                Ok(Err(CampaignError::WorkerPanic(message))) => FailureKind::Panicked { message },
                Err(payload) => FailureKind::Panicked {
                    message: panic_message(payload),
                },
            };
            if attempt <= self.retries {
                Counter::new(rec, "engine.retry", canonical).incr();
                continue;
            }
            let counter = match kind {
                FailureKind::Hung { .. } => "engine.cell_hung",
                FailureKind::Panicked { .. } => "engine.cell_failed",
                FailureKind::Cancelled => "engine.cell_cancelled",
            };
            Counter::new(rec, counter, canonical).incr();
            return (
                Err(CellFailure {
                    cell: canonical.to_string(),
                    attempts: attempt,
                    kind,
                }),
                attempt,
            );
        }
    }

    /// Executes one cell with `inner` worker threads inside the
    /// campaign. This is the only place campaigns are constructed; the
    /// watchdog token is threaded into every campaign driver.
    fn execute(
        &self,
        key: &CellKey,
        inner: usize,
        canonical: &str,
        token: &CancelToken,
    ) -> Result<CellResult, CampaignError> {
        let rec = &*self.recorder;
        let seed = key.cell_seed(self.seed);
        let workload = key.workload.build();
        let golden_key = key.workload.golden_key(key.precision);
        let memoized_golden = |store: &ResultStore| {
            let computed = AtomicBool::new(false);
            let golden = store.golden(&golden_key, || {
                computed.store(true, Ordering::Relaxed);
                workload.run_golden(key.precision)
            });
            let counter = if computed.load(Ordering::Relaxed) {
                "golden.compute"
            } else {
                "golden.reuse"
            };
            Counter::new(rec, counter, &golden_key).incr();
            golden
        };
        match key.kind {
            CellKind::Beam {
                hours,
                target_candidates,
                classifier,
                sampling,
            } => {
                let device = key.device.build();
                let profile = key.workload.profile(key.device);
                let golden = memoized_golden(&self.store);
                let session = BeamSession {
                    hours,
                    target_candidates,
                    seed,
                    threads: inner,
                };
                let mut campaign =
                    BeamCampaign::new(device.as_ref(), workload.as_ref(), &profile, key.precision)
                        .session(session)
                        .sampling(sampling)
                        .golden(&golden)
                        .telemetry(rec, canonical)
                        .cancel_token(token.clone());
                if let Some(classify) = classifier.classifier() {
                    campaign = campaign.classifier(classify);
                }
                campaign.try_run().map(CellResult::Beam)
            }
            CellKind::Inject {
                injections,
                model,
                live_fraction,
                sampling,
            } => {
                let golden = memoized_golden(&self.store);
                InjectionCampaign::new(workload.as_ref(), key.precision)
                    .injections(injections)
                    .seed(seed)
                    .model(model)
                    .live_fraction(live_fraction)
                    .sampling(sampling)
                    .threads(inner)
                    .golden(&golden)
                    .telemetry(rec, canonical)
                    .cancel_token(token.clone())
                    .try_run()
                    .map(CellResult::Inject)
            }
            CellKind::Accumulate { faults, trials } => {
                let golden = memoized_golden(&self.store);
                let sites = workload.site_count(key.precision);
                let width = key.precision.total_bits();
                let mut rng = SplitMix::new(seed);
                let mut sdc = 0u64;
                let mut corrupted_sum = 0.0;
                for _ in 0..trials {
                    // Watchdog poll at trial granularity — one trial is
                    // a full workload run, the accumulation loop's
                    // strike batch.
                    if token.is_cancelled() {
                        return Err(CampaignError::Cancelled);
                    }
                    let strikes: Vec<(u64, ValueFault)> = (0..faults)
                        .map(|_| {
                            let site = rng.next_u64() % sites;
                            let bit = (rng.next_u64() % width as u64) as u32;
                            let fault = if rng.next_u64().is_multiple_of(2) {
                                ValueFault::StuckHigh(bit)
                            } else {
                                ValueFault::StuckLow(bit)
                            };
                            (site, fault)
                        })
                        .collect();
                    let mut hook = MultiStrikeHook::new(strikes);
                    let out = workload.dispatch(key.precision, &mut hook);
                    let corrupted = out
                        .iter()
                        .zip(golden.iter())
                        .filter(|(a, b)| a.to_bits() != b.to_bits())
                        .count();
                    if corrupted > 0 {
                        sdc += 1;
                        corrupted_sum += corrupted as f64 / golden.len().max(1) as f64;
                    }
                }
                Ok(CellResult::Accumulate(AccumulateOutcome {
                    sdc_probability: sdc as f64 / trials.max(1) as f64,
                    corruption_extent: if sdc > 0 {
                        corrupted_sum / sdc as f64
                    } else {
                        0.0
                    },
                    trials,
                }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{ClassifierId, DeviceId, WorkloadId};
    use mpr_fault::hostile::HostileMode;
    use mpr_fault::FaultModel;
    use mpr_metrics::SamplingPlan;
    use mpr_softfloat::Precision;

    fn micro_cell(p: Precision) -> CellKey {
        CellKey {
            device: DeviceId::TitanV,
            workload: WorkloadId::Micro {
                op: mpr_kernels::MicroKernelOp::Add,
                threads: 8,
                iters: 32,
            },
            precision: p,
            kind: CellKind::Beam {
                hours: 10.0,
                target_candidates: 80,
                classifier: ClassifierId::None,
                sampling: SamplingPlan::Fixed,
            },
        }
    }

    #[test]
    fn duplicate_requests_execute_once() {
        let engine = Engine::new(3);
        let mut plan = ExperimentPlan::new();
        plan.push(micro_cell(Precision::Single));
        plan.push(micro_cell(Precision::Single));
        plan.push(micro_cell(Precision::Half));
        assert_eq!(plan.unique_count(), 2);
        let results = engine.run(&plan);
        assert_eq!(results.len(), 3);
        assert_eq!(engine.store().executed(), 2);
        // The duplicate requests received the same outcome.
        assert_eq!(
            results[0].beam().sdc.events(),
            results[1].beam().sdc.events()
        );
    }

    #[test]
    fn rerun_is_served_from_memory() {
        let engine = Engine::new(5);
        let key = CellKey {
            device: DeviceId::Knc3120a,
            workload: WorkloadId::Lud { dim: 10 },
            precision: Precision::Double,
            kind: CellKind::Inject {
                injections: 40,
                model: FaultModel::SingleBit,
                live_fraction: 1.0,
                sampling: SamplingPlan::Fixed,
            },
        };
        let a = engine.run_one(&key);
        let b = engine.run_one(&key);
        assert_eq!(engine.store().executed(), 1);
        assert!(engine.store().mem_hits() >= 1);
        assert_eq!(a.inject().counts, b.inject().counts);
    }

    #[test]
    fn thread_counts_do_not_change_results() {
        let run = |threads| {
            let engine = Engine::new(11).with_threads(threads);
            let mut plan = ExperimentPlan::new();
            plan.push(micro_cell(Precision::Single));
            plan.push(micro_cell(Precision::Double));
            let r = engine.run(&plan);
            (
                r[0].beam().sdc.events(),
                r[1].beam().sdc.events(),
                r[0].beam().severities.len(),
            )
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(8));
    }

    #[test]
    fn accumulation_cells_execute() {
        let engine = Engine::new(7);
        let key = CellKey {
            device: DeviceId::Zynq7000,
            workload: WorkloadId::Gemm { dim: 8 },
            precision: Precision::Half,
            kind: CellKind::Accumulate {
                faults: 16,
                trials: 10,
            },
        };
        let r = engine.run_one(&key);
        let acc = r.accumulate();
        assert!(acc.sdc_probability > 0.5, "{acc:?}");
        assert_eq!(acc.trials, 10);
    }

    #[test]
    fn failing_cell_is_isolated_and_classified() {
        // Tag is unique to this test: the flaky registry is
        // process-global.
        let key = CellKey {
            device: DeviceId::TitanV,
            workload: WorkloadId::Hostile {
                tag: 0xE0_0001,
                mode: HostileMode::FlakyGolden { panics: 99 },
            },
            precision: Precision::Single,
            kind: CellKind::Accumulate {
                faults: 2,
                trials: 2,
            },
        };
        let engine = Engine::new(13);
        let failure = engine.try_run_one(&key).expect_err("cell must fail");
        assert_eq!(failure.attempts, 1);
        assert!(matches!(failure.kind, FailureKind::Panicked { .. }));
        assert!(
            failure.kind.to_string().contains("staged golden failure"),
            "{}",
            failure.kind
        );
        assert_eq!(engine.store().executed(), 0, "no partial result published");
    }

    #[test]
    fn retry_recovers_a_flaky_cell_with_the_same_seed() {
        let cell = |tag| CellKey {
            device: DeviceId::TitanV,
            workload: WorkloadId::Hostile {
                tag,
                mode: HostileMode::FlakyGolden { panics: 1 },
            },
            precision: Precision::Single,
            kind: CellKind::Accumulate {
                faults: 2,
                trials: 4,
            },
        };
        let engine = Engine::new(17).with_retries(1);
        let recovered = engine
            .try_run_one(&cell(0xE0_0002))
            .expect("retry must recover");
        // Without retries the same schedule fails outright.
        let strict = Engine::new(17);
        assert!(strict.try_run_one(&cell(0xE0_0003)).is_err());
        // The recovered result uses the unchanged per-cell seed, so it
        // matches a clean never-failing run of the same kernel modulo
        // the mode token. (Exact byte equality across modes is covered
        // by the integration tests via cache bytes.)
        assert!(recovered.accumulate().trials == 4);
    }
}
