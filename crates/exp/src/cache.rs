//! On-disk JSON cache for cell results.
//!
//! Format: one file per cell, named `<fnv1a64(store_key)>.json`, whose
//! body embeds the full store key. Loads verify the embedded key
//! against the requested one, so a hash collision or a stale file is a
//! cache miss, never a wrong result. Floats are encoded as the hex of
//! their IEEE-754 bits (`"3ff0000000000000"`) so every value
//! round-trips bit-exactly — a warm-cache report is byte-identical to
//! the cold run that produced it. Bump [`crate::cell::KEY_VERSION`]
//! (which is part of every store key) to invalidate all entries when
//! execution semantics change.

use crate::store::{AccumulateOutcome, CellResult};
use crate::vfs::{commit_durable, Vfs};
use mpr_beam::{CampaignResult, SdcLabel};
use mpr_fault::InjectionReport;
use mpr_metrics::{CrossSection, OutcomeCounts};
use mpr_obs::fnv1a64;
use mpr_softfloat::Precision;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Identifies the file layout, independent of the cell-key version.
const FORMAT: &str = "mpr-exp-cache-v1";

/// The cache file path for a store key.
pub fn entry_path(dir: &Path, store_key: &str) -> PathBuf {
    dir.join(format!("{:016x}.json", fnv1a64(store_key.as_bytes())))
}

/// Serializes and commits one entry through the durable
/// [`commit_durable`] protocol (tmp write, file fsync, rename, parent
/// fsync), so a completed save survives a crash and a failed one
/// leaves only a sweepable `*.tmp`. The caller decides what an I/O
/// failure means — the engine degrades to memoization but *counts* the
/// lost warm-start bytes (`engine.cache_write_failed`) instead of
/// silently swallowing them.
pub fn save(
    vfs: &dyn Vfs,
    dir: &Path,
    store_key: &str,
    result: &CellResult,
) -> std::io::Result<()> {
    let path = entry_path(dir, store_key);
    let body = serialize(store_key, result);
    commit_durable(vfs, &path, body.as_bytes())
}

/// The result of reading one cache entry.
#[derive(Debug)]
pub enum LoadOutcome {
    /// A verified entry for the requested key.
    Hit(CellResult),
    /// No usable entry: the file is absent, or it is a *valid* entry
    /// that simply is not ours — another format version, or another
    /// store key behind the same file-name hash. Valid foreign files
    /// are left alone.
    Miss,
    /// The file exists but cannot be decoded: a truncated write, bit
    /// rot, or hand edits. The store quarantines it so a damaged entry
    /// is inspected once, not re-parsed on every lookup.
    Corrupt,
}

/// Loads one entry, classifying the answer as a hit, an honest miss,
/// or a corrupt file (see [`LoadOutcome`]).
///
/// A read error (absent file, or an injected read failure) is a miss —
/// the engine re-executes the cell. Bytes that arrive but do not
/// decode — invalid UTF-8, torn JSON, a flipped bit — are corruption,
/// and the store quarantines the file.
pub fn load(vfs: &dyn Vfs, path: &Path, store_key: &str) -> LoadOutcome {
    let Ok(bytes) = vfs.read(path) else {
        return LoadOutcome::Miss;
    };
    let Ok(body) = String::from_utf8(bytes) else {
        return LoadOutcome::Corrupt;
    };
    let Some(value) = parse(&body) else {
        return LoadOutcome::Corrupt;
    };
    let Some(obj) = value.as_obj() else {
        return LoadOutcome::Corrupt;
    };
    match (
        obj.get("format").and_then(Json::as_str),
        obj.get("key").and_then(Json::as_str),
    ) {
        (Some(format), Some(key)) => {
            // A well-formed file claiming a different format version or
            // key is a legitimate miss, never quarantined.
            if format != FORMAT || key != store_key {
                return LoadOutcome::Miss;
            }
        }
        _ => return LoadOutcome::Corrupt,
    }
    match obj.get("result").and_then(decode_result) {
        Some(result) => LoadOutcome::Hit(result),
        None => LoadOutcome::Corrupt,
    }
}

/// Decodes the `result` object of a verified entry.
fn decode_result(value: &Json) -> Option<CellResult> {
    let result = value.as_obj()?;
    match result.get("kind")?.as_str()? {
        "beam" => Some(CellResult::Beam(CampaignResult {
            device: result.get("device")?.as_str()?.to_string(),
            workload: result.get("workload")?.as_str()?.to_string(),
            precision: parse_precision(result.get("precision")?.as_str()?)?,
            exec_time_s: result.get("exec_time_s")?.as_f64()?,
            runs: result.get("runs")?.as_f64()?,
            fluence: result.get("fluence")?.as_f64()?,
            candidates: result.get("candidates")?.as_u64()?,
            // Adaptive-only fields; absent on fixed-path entries, where
            // every candidate executed under the session fluence.
            executed: match result.get("executed") {
                Some(v) => v.as_u64()?,
                None => result.get("candidates")?.as_u64()?,
            },
            sdc: CrossSection::new(
                result.get("sdc_events")?.as_u64()?,
                match result.get("sdc_fluence") {
                    Some(v) => v.as_f64()?,
                    None => result.get("fluence")?.as_f64()?,
                },
            ),
            due: CrossSection::new(
                result.get("due_events")?.as_u64()?,
                result.get("fluence")?.as_f64()?,
            ),
            severities: result.get("severities")?.as_f64_vec()?,
            labels: result
                .get("labels")?
                .as_arr()?
                .iter()
                .map(|l| l.as_str().and_then(intern_label))
                .collect::<Option<Vec<_>>>()?,
        })),
        "inject" => Some(CellResult::Inject(InjectionReport {
            workload: result.get("workload")?.as_str()?.to_string(),
            precision: parse_precision(result.get("precision")?.as_str()?)?,
            counts: OutcomeCounts::new(
                result.get("masked")?.as_u64()?,
                result.get("sdc")?.as_u64()?,
                result.get("due")?.as_u64()?,
            ),
            severities: result.get("severities")?.as_f64_vec()?,
        })),
        "accumulate" => Some(CellResult::Accumulate(AccumulateOutcome {
            sdc_probability: result.get("sdc_probability")?.as_f64()?,
            corruption_extent: result.get("corruption_extent")?.as_f64()?,
            trials: result.get("trials")?.as_u64()? as u32,
        })),
        _ => None,
    }
}

/// Maps a stored label back to the engine's static label strings.
///
/// SDC labels are `&'static str` by design (they are interned name
/// tags, not data); only labels produced by a named [`crate::ClassifierId`]
/// can appear in a cache entry, so an unknown label means a foreign or
/// corrupt file and the load is rejected.
fn intern_label(label: &str) -> Option<SdcLabel> {
    const KNOWN: [SdcLabel; 4] = ["critical", "tolerable", "detection", "classification"];
    KNOWN.iter().find(|&&k| k == label).copied()
}

fn parse_precision(name: &str) -> Option<Precision> {
    match name {
        "double" => Some(Precision::Double),
        "single" => Some(Precision::Single),
        "half" => Some(Precision::Half),
        _ => None,
    }
}

// --- serialization ---------------------------------------------------------

fn serialize(store_key: &str, result: &CellResult) -> String {
    let mut out = String::with_capacity(512);
    out.push_str("{\n");
    field(&mut out, "format", &str_json(FORMAT));
    field(&mut out, "key", &str_json(store_key));
    out.push_str("  \"result\": {\n");
    match result {
        CellResult::Beam(r) => {
            field2(&mut out, "kind", &str_json("beam"));
            field2(&mut out, "device", &str_json(&r.device));
            field2(&mut out, "workload", &str_json(&r.workload));
            field2(&mut out, "precision", &str_json(r.precision.name()));
            field2(&mut out, "exec_time_s", &f64_json(r.exec_time_s));
            field2(&mut out, "runs", &f64_json(r.runs));
            field2(&mut out, "fluence", &f64_json(r.fluence));
            field2(&mut out, "candidates", &r.candidates.to_string());
            // Adaptive-only fields, emitted only when they differ from
            // the fixed-path defaults: fixed entries keep their
            // pre-adaptive bytes, so no KEY_VERSION bump and zero cache
            // invalidation.
            if r.executed != r.candidates {
                field2(&mut out, "executed", &r.executed.to_string());
            }
            if r.sdc.fluence().to_bits() != r.fluence.to_bits() {
                field2(&mut out, "sdc_fluence", &f64_json(r.sdc.fluence()));
            }
            field2(&mut out, "sdc_events", &r.sdc.events().to_string());
            field2(&mut out, "due_events", &r.due.events().to_string());
            field2(&mut out, "severities", &f64_vec_json(&r.severities));
            let labels: Vec<String> = r.labels.iter().map(|l| str_json(l)).collect();
            last_field2(&mut out, "labels", &format!("[{}]", labels.join(",")));
        }
        CellResult::Inject(r) => {
            field2(&mut out, "kind", &str_json("inject"));
            field2(&mut out, "workload", &str_json(&r.workload));
            field2(&mut out, "precision", &str_json(r.precision.name()));
            field2(&mut out, "masked", &r.counts.masked.to_string());
            field2(&mut out, "sdc", &r.counts.sdc.to_string());
            field2(&mut out, "due", &r.counts.due.to_string());
            last_field2(&mut out, "severities", &f64_vec_json(&r.severities));
        }
        CellResult::Accumulate(r) => {
            field2(&mut out, "kind", &str_json("accumulate"));
            field2(&mut out, "sdc_probability", &f64_json(r.sdc_probability));
            field2(
                &mut out,
                "corruption_extent",
                &f64_json(r.corruption_extent),
            );
            last_field2(&mut out, "trials", &r.trials.to_string());
        }
    }
    out.push_str("  }\n}\n");
    out
}

fn field(out: &mut String, name: &str, value: &str) {
    out.push_str(&format!("  \"{name}\": {value},\n"));
}

fn field2(out: &mut String, name: &str, value: &str) {
    out.push_str(&format!("    \"{name}\": {value},\n"));
}

fn last_field2(out: &mut String, name: &str, value: &str) {
    out.push_str(&format!("    \"{name}\": {value}\n"));
}

pub(crate) fn str_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Floats travel as the hex of their bits, quoted, for exact round-trip.
fn f64_json(v: f64) -> String {
    format!("\"{:016x}\"", v.to_bits())
}

fn f64_vec_json(vs: &[f64]) -> String {
    let items: Vec<String> = vs.iter().map(|v| f64_json(*v)).collect();
    format!("[{}]", items.join(","))
}

// --- parsing ---------------------------------------------------------------

/// A parsed JSON value; numbers stay as raw text until typed access.
/// Shared with the campaign manifest module, which reuses the same
/// hand-rolled parser discipline.
pub(crate) enum Json {
    Obj(BTreeMap<String, Json>),
    Arr(Vec<Json>),
    Str(String),
    Num(String),
}

impl Json {
    pub(crate) fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// Floats are stored as quoted bit-hex strings.
    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Str(s) if s.len() == 16 => u64::from_str_radix(s, 16).ok().map(f64::from_bits),
            _ => None,
        }
    }

    fn as_f64_vec(&self) -> Option<Vec<f64>> {
        self.as_arr()?.iter().map(Json::as_f64).collect()
    }
}

pub(crate) fn parse(text: &str) -> Option<Json> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    (pos == bytes.len()).then_some(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while matches!(b.get(*pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Option<Json> {
    skip_ws(b, pos);
    match b.get(*pos)? {
        b'{' => parse_obj(b, pos),
        b'[' => parse_arr(b, pos),
        b'"' => parse_str(b, pos).map(Json::Str),
        c if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        _ => None,
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Option<Json> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Some(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return None;
        }
        *pos += 1;
        map.insert(key, parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos)? {
            b',' => *pos += 1,
            b'}' => {
                *pos += 1;
                return Some(Json::Obj(map));
            }
            _ => return None,
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Option<Json> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Some(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos)? {
            b',' => *pos += 1,
            b']' => {
                *pos += 1;
                return Some(Json::Arr(items));
            }
            _ => return None,
        }
    }
}

fn parse_str(b: &[u8], pos: &mut usize) -> Option<String> {
    if b.get(*pos) != Some(&b'"') {
        return None;
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'u' => {
                        let hex = b.get(*pos + 1..*pos + 5)?;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        out.push(char::from_u32(code)?);
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            &c if c < 0x80 => {
                out.push(c as char);
                *pos += 1;
            }
            _ => {
                // Multi-byte UTF-8: consume the full scalar.
                let s = std::str::from_utf8(b.get(*pos..)?).ok()?;
                let c = s.chars().next()?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Option<Json> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while b
        .get(*pos)
        .is_some_and(|&c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E'))
    {
        *pos += 1;
    }
    let digits = b.get(start..*pos)?;
    (*pos > start).then(|| Json::Num(String::from_utf8_lossy(digits).into_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::RealFs;

    fn sample_beam() -> CellResult {
        CellResult::Beam(CampaignResult {
            device: "NVIDIA Titan V".to_string(),
            workload: "MxM".to_string(),
            precision: Precision::Single,
            exec_time_s: 0.1 + 0.2, // a value that does not print exactly
            runs: 3.5e5,
            fluence: 1.25e9,
            candidates: 400,
            executed: 400,
            sdc: CrossSection::new(37, 1.25e9),
            due: CrossSection::new(5, 1.25e9),
            severities: vec![1e-8, 0.25, f64::INFINITY],
            labels: vec!["tolerable", "critical"],
        })
    }

    #[test]
    fn beam_round_trips_bit_exactly() {
        let dir = std::env::temp_dir().join("mpr-exp-cache-test-beam");
        let key = "seed=0000000000000007;v1;dev=titan-v;wl=gemm:12;p=single;k=beam";
        save(&RealFs, &dir, key, &sample_beam()).expect("save");
        let loaded = load(&RealFs, &entry_path(&dir, key), key);
        let (CellResult::Beam(orig), LoadOutcome::Hit(CellResult::Beam(got))) =
            (sample_beam(), loaded)
        else {
            // mpr-allow: panic-hygiene -- test asserts the variant round-trips
            panic!("beam entry failed to load");
        };
        assert_eq!(got.device, orig.device);
        assert_eq!(got.precision, orig.precision);
        assert_eq!(got.exec_time_s.to_bits(), orig.exec_time_s.to_bits());
        assert_eq!(got.fluence.to_bits(), orig.fluence.to_bits());
        assert_eq!(got.candidates, orig.candidates);
        assert_eq!(got.sdc.events(), orig.sdc.events());
        assert_eq!(got.due.events(), orig.due.events());
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&got.severities), bits(&orig.severities));
        assert_eq!(got.labels, orig.labels);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn adaptive_beam_round_trips_and_fixed_bytes_are_unchanged() {
        // A fixed-path result must serialize without the adaptive-only
        // fields — their presence would invalidate every pre-adaptive
        // cache entry.
        let key = "seed=0000000000000007;v2;dev=titan-v;wl=gemm:12;p=single;k=beam";
        let fixed = serialize(key, &sample_beam());
        assert!(!fixed.contains("executed"), "fixed entries gain no field");
        assert!(!fixed.contains("sdc_fluence"));

        // An adaptive result (early-stopped, reweighted cross section)
        // round-trips both extra fields bit-exactly.
        let dir = std::env::temp_dir().join("mpr-exp-cache-test-adaptive");
        let adaptive = CellResult::Beam(CampaignResult {
            device: "NVIDIA Titan V".to_string(),
            workload: "MxM".to_string(),
            precision: Precision::Single,
            exec_time_s: 0.3,
            runs: 3.5e5,
            fluence: 1.25e9,
            candidates: 400,
            executed: 64,
            sdc: CrossSection::new(37, 2.17e8),
            due: CrossSection::new(5, 1.25e9),
            severities: vec![0.25],
            labels: vec![],
        });
        let body = serialize(key, &adaptive);
        assert!(body.contains("\"executed\": 64"));
        assert!(body.contains("sdc_fluence"));
        save(&RealFs, &dir, key, &adaptive).expect("save");
        let LoadOutcome::Hit(CellResult::Beam(got)) = load(&RealFs, &entry_path(&dir, key), key)
        else {
            // mpr-allow: panic-hygiene -- test asserts the variant round-trips
            panic!("adaptive beam entry failed to load");
        };
        assert_eq!(got.executed, 64);
        assert_eq!(got.candidates, 400);
        assert_eq!(got.sdc.events(), 37);
        assert_eq!(got.sdc.fluence().to_bits(), 2.17e8f64.to_bits());
        assert_eq!(got.due.fluence().to_bits(), 1.25e9f64.to_bits());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_mismatch_is_a_miss() {
        let dir = std::env::temp_dir().join("mpr-exp-cache-test-miss");
        let key = "seed=0000000000000001;v1;dev=a;wl=b;p=half;k=acc:k=1,t=2";
        save(
            &RealFs,
            &dir,
            key,
            &CellResult::Accumulate(AccumulateOutcome {
                sdc_probability: 1.0,
                corruption_extent: 0.5,
                trials: 2,
            }),
        )
        .expect("save");
        // Same file, different expected key: an honest miss, never a
        // quarantine candidate — the file is valid, just not ours.
        assert!(matches!(
            load(&RealFs, &entry_path(&dir, key), "seed=ff;other"),
            LoadOutcome::Miss
        ));
        assert!(matches!(
            load(&RealFs, &entry_path(&dir, key), key),
            LoadOutcome::Hit(_)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_files_classify_as_corrupt() {
        let dir = std::env::temp_dir().join("mpr-exp-cache-test-corrupt");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let key = "seed=0000000000000009;v1;dev=a;wl=b;p=half;k=acc:k=1,t=2";
        let path = entry_path(&dir, key);

        // Absent file: a miss, not corruption.
        assert!(matches!(load(&RealFs, &path, key), LoadOutcome::Miss));

        // Truncated JSON: corrupt.
        std::fs::write(&path, "{\"format\": \"mpr-exp-cache-v1\", \"key").expect("write");
        assert!(matches!(load(&RealFs, &path, key), LoadOutcome::Corrupt));

        // Well-formed JSON with the right key but a broken result
        // payload: corrupt.
        std::fs::write(
            &path,
            format!(
                "{{\"format\": {}, \"key\": {}, \"result\": {{\"kind\": \"beam\"}}}}",
                str_json(FORMAT),
                str_json(key)
            ),
        )
        .expect("write");
        assert!(matches!(load(&RealFs, &path, key), LoadOutcome::Corrupt));

        // A different format version: a miss (foreign, left alone).
        std::fs::write(
            &path,
            format!(
                "{{\"format\": \"mpr-exp-cache-v99\", \"key\": {}, \"result\": {{}}}}",
                str_json(key)
            ),
        )
        .expect("write");
        assert!(matches!(load(&RealFs, &path, key), LoadOutcome::Miss));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_surfaces_io_errors() {
        // A cache "directory" that is actually a file: create_dir_all
        // (or the write) must fail, and the caller gets to count it.
        let blocker = std::env::temp_dir().join("mpr-exp-cache-test-blocked");
        std::fs::write(&blocker, "not a directory").expect("write blocker");
        let err = save(
            &RealFs,
            &blocker,
            "seed=00;v1;k",
            &CellResult::Accumulate(AccumulateOutcome {
                sdc_probability: 0.0,
                corruption_extent: 0.0,
                trials: 1,
            }),
        );
        assert!(err.is_err());
        let _ = std::fs::remove_file(&blocker);
    }

    #[test]
    fn inject_round_trips() {
        let dir = std::env::temp_dir().join("mpr-exp-cache-test-inject");
        let key = "seed=0000000000000002;v1;dev=knc-3120a;wl=lud:16;p=double;k=inj";
        let orig = CellResult::Inject(InjectionReport {
            workload: "LUD".to_string(),
            precision: Precision::Double,
            counts: OutcomeCounts::new(300, 99, 1),
            severities: vec![0.001, 2.0],
        });
        save(&RealFs, &dir, key, &orig).expect("save");
        let LoadOutcome::Hit(CellResult::Inject(got)) = load(&RealFs, &entry_path(&dir, key), key)
        else {
            // mpr-allow: panic-hygiene -- test asserts the variant round-trips
            panic!("inject entry failed to load");
        };
        assert_eq!(got.counts, OutcomeCounts::new(300, 99, 1));
        assert_eq!(got.workload, "LUD");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_labels_are_rejected() {
        assert_eq!(intern_label("critical"), Some("critical"));
        assert_eq!(intern_label("made-up"), None);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("").is_none());
        assert!(parse("{").is_none());
        assert!(parse("{\"a\": }").is_none());
        assert!(parse("{} trailing").is_none());
        assert!(parse("{\"a\": 1}").is_some());
    }
}
