//! Experiment cells: the unit of execution, deduplication, and caching.
//!
//! A [`CellKey`] names one campaign completely — device, workload,
//! precision, and the session/injection parameters — so that two
//! requests for the same key are provably the same experiment. Keys
//! have a canonical string encoding (versioned, byte-stable) whose
//! FNV-1a hash doubles as the cache file name and the salt from which
//! the cell's RNG seed is derived.

use mpr_arch::{Device, Fpga, VoltaGpu, WorkloadProfile, XeonPhiKnc};
use mpr_beam::SdcClassifier;
use mpr_fault::hostile::{HostileMode, HostileWorkload};
use mpr_fault::{FaultModel, Workload};
use mpr_kernels::{profiles as kprofiles, Gemm, LavaMd, Lud, Micro, MicroKernelOp};
use mpr_metrics::SamplingPlan;
use mpr_nn::{profiles as nprofiles, ClassificationImpact, DetectionImpact, Mnist, TinyYolo};
use mpr_obs::{fnv1a64, mix_seed};
use mpr_softfloat::Precision;
use std::fmt;

/// Version tag prefixed to every canonical key; bump it to invalidate
/// every existing cache entry when the execution semantics change.
/// v2: per-strike seed derivation moved to the splitmix64 avalanche and
/// campaign observation order became thread-invariant, so v1 cache
/// entries no longer reproduce what an execution would produce.
pub const KEY_VERSION: &str = "v2";

/// One of the study's device models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DeviceId {
    /// NVIDIA Titan V (no ECC).
    TitanV,
    /// Tesla V100: the same GV100 silicon with SECDED ECC.
    TeslaV100,
    /// Intel Xeon Phi 3120A (Knights Corner).
    Knc3120a,
    /// Xilinx Zynq-7000 FPGA.
    Zynq7000,
}

impl DeviceId {
    /// Canonical token used in keys and accepted by [`DeviceId::parse`].
    pub fn token(&self) -> &'static str {
        match self {
            DeviceId::TitanV => "titan-v",
            DeviceId::TeslaV100 => "tesla-v100",
            DeviceId::Knc3120a => "knc-3120a",
            DeviceId::Zynq7000 => "zynq-7000",
        }
    }

    /// Parses a device token (the CLI aliases included).
    pub fn parse(s: &str) -> Option<DeviceId> {
        match s {
            "titan-v" | "gpu" => Some(DeviceId::TitanV),
            "tesla-v100" | "gpu-ecc" | "v100" => Some(DeviceId::TeslaV100),
            "knc-3120a" | "knc" | "xeon-phi" => Some(DeviceId::Knc3120a),
            "zynq-7000" | "fpga" | "zynq" => Some(DeviceId::Zynq7000),
            _ => None,
        }
    }

    /// Instantiates the device model.
    pub fn build(&self) -> Box<dyn Device> {
        match self {
            DeviceId::TitanV => Box::new(VoltaGpu::titan_v()),
            DeviceId::TeslaV100 => Box::new(VoltaGpu::tesla_v100()),
            DeviceId::Knc3120a => Box::new(XeonPhiKnc::coprocessor_3120a()),
            DeviceId::Zynq7000 => Box::new(Fpga::zynq7000()),
        }
    }
}

/// One of the study's workloads, with its size parameters.
///
/// The parameters are part of the identity: a 12x12 GEMM and a 24x24
/// GEMM are different experiments and never share cache entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WorkloadId {
    /// Dense matrix multiplication, `dim` x `dim`.
    Gemm {
        /// Matrix dimension.
        dim: usize,
    },
    /// LavaMD particle potentials.
    LavaMd {
        /// Boxes per dimension.
        boxes: usize,
        /// Particles per box.
        particles: usize,
        /// Use the KNC dedicated-transcendental-unit exp model.
        knc_unit: bool,
    },
    /// LU decomposition, `dim` x `dim`.
    Lud {
        /// Matrix dimension.
        dim: usize,
    },
    /// One arithmetic microbenchmark.
    Micro {
        /// The operation under test.
        op: MicroKernelOp,
        /// Simulated thread count.
        threads: usize,
        /// Iterations per thread.
        iters: usize,
    },
    /// The MNIST classifier proxy.
    Mnist {
        /// Weight/data seed.
        seed: u64,
    },
    /// The YOLO-style detector proxy.
    Yolo,
    /// A hostile harness-test workload ([`mpr_fault::hostile`]): an
    /// ordinary deterministic kernel with scripted misbehavior, used by
    /// the fault-tolerance tests, the hostile-harness example, and CI's
    /// recovery smoke test. Never part of a paper figure.
    Hostile {
        /// Kernel/registry tag; distinct tags are distinct experiments
        /// with independent failure schedules.
        tag: u64,
        /// The scripted misbehavior.
        mode: HostileMode,
    },
}

impl WorkloadId {
    /// Canonical token used in keys.
    pub fn token(&self) -> String {
        match self {
            WorkloadId::Gemm { dim } => format!("gemm:{dim}"),
            WorkloadId::LavaMd {
                boxes,
                particles,
                knc_unit,
            } => format!(
                "lavamd:{boxes}x{particles}{}",
                if *knc_unit { ":knc" } else { "" }
            ),
            WorkloadId::Lud { dim } => format!("lud:{dim}"),
            WorkloadId::Micro { op, threads, iters } => {
                format!("micro-{}:{threads}x{iters}", op_token(*op))
            }
            WorkloadId::Mnist { seed } => format!("mnist:{seed:016x}"),
            WorkloadId::Yolo => "yolo".to_string(),
            WorkloadId::Hostile { tag, mode } => {
                let mode = match mode {
                    HostileMode::FlakyGolden { panics } => format!("flaky={panics}"),
                    HostileMode::SlowStrike { millis } => format!("slow={millis}ms"),
                    HostileMode::WellBehaved => "ok".to_string(),
                };
                format!("hostile:{tag:016x}:{mode}")
            }
        }
    }

    /// Instantiates the workload.
    pub fn build(&self) -> Box<dyn Workload> {
        match *self {
            WorkloadId::Gemm { dim } => Box::new(Gemm::new(dim)),
            WorkloadId::LavaMd {
                boxes,
                particles,
                knc_unit,
            } => {
                let w = LavaMd::new(boxes, particles);
                Box::new(if knc_unit { w.for_knc() } else { w })
            }
            WorkloadId::Lud { dim } => Box::new(Lud::new(dim)),
            WorkloadId::Micro { op, threads, iters } => Box::new(Micro::new(op, threads, iters)),
            WorkloadId::Mnist { seed } => Box::new(Mnist::new().with_seed(seed)),
            WorkloadId::Yolo => Box::new(TinyYolo::new()),
            WorkloadId::Hostile { tag, mode } => Box::new(HostileWorkload::new(tag, mode)),
        }
    }

    /// The full-scale characterization profile for this workload on a
    /// device — the same mapping the figure runners and the CLI used to
    /// duplicate by hand.
    pub fn profile(&self, device: DeviceId) -> WorkloadProfile {
        match self {
            WorkloadId::Gemm { .. } => match device {
                DeviceId::Knc3120a => kprofiles::mxm_knc(),
                DeviceId::Zynq7000 => kprofiles::mxm_fpga(),
                _ => kprofiles::mxm_gpu(),
            },
            WorkloadId::LavaMd { .. } => match device {
                DeviceId::Knc3120a => kprofiles::lavamd_knc(),
                _ => kprofiles::lavamd_gpu(),
            },
            WorkloadId::Lud { .. } => kprofiles::lud_knc(),
            WorkloadId::Micro { op, .. } => kprofiles::micro(*op),
            WorkloadId::Mnist { .. } => nprofiles::mnist_fpga(),
            WorkloadId::Yolo => nprofiles::yolo_gpu(),
            // Hostile cells reuse the microbenchmark profile: their
            // kernel is a micro-scale fold and their purpose is harness
            // testing, not device characterization.
            WorkloadId::Hostile { .. } => kprofiles::micro(MicroKernelOp::Add),
        }
    }

    /// Key used for golden-output memoization: the golden run depends
    /// only on the workload and the precision, never on the device or
    /// session, so every cell sharing this pair shares one golden run.
    pub fn golden_key(&self, precision: Precision) -> String {
        format!("{}@{}", self.token(), precision.name())
    }
}

fn op_token(op: MicroKernelOp) -> &'static str {
    match op {
        MicroKernelOp::Add => "add",
        MicroKernelOp::Mul => "mul",
        MicroKernelOp::Fma => "fma",
    }
}

/// A domain SDC classifier, named so it can live inside a cache key.
///
/// Classifiers must be pure functions of `(golden, corrupted)`; naming
/// them (rather than carrying closures) is what makes beam cells
/// replayable from their key alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ClassifierId {
    /// No labelling: every SDC is just an SDC.
    None,
    /// MNIST logits: `critical` (misclassification) vs `tolerable`.
    MnistLogits,
    /// YOLO detections: `tolerable` / `detection` / `classification`.
    YoloDetections,
}

fn classify_mnist(golden: &[f64], out: &[f64]) -> &'static str {
    match mpr_nn::classify_logits(golden, out) {
        ClassificationImpact::Critical => "critical",
        ClassificationImpact::Tolerable => "tolerable",
    }
}

fn classify_yolo(golden: &[f64], out: &[f64]) -> &'static str {
    let g = TinyYolo::decode(golden);
    let o = TinyYolo::decode(out);
    match mpr_nn::classify_detections(&g, &o) {
        DetectionImpact::Tolerable => "tolerable",
        DetectionImpact::DetectionChanged => "detection",
        DetectionImpact::ClassificationChanged => "classification",
    }
}

static MNIST_CLASSIFIER: fn(&[f64], &[f64]) -> &'static str = classify_mnist;
static YOLO_CLASSIFIER: fn(&[f64], &[f64]) -> &'static str = classify_yolo;

impl ClassifierId {
    /// Canonical token used in keys.
    pub fn token(&self) -> &'static str {
        match self {
            ClassifierId::None => "none",
            ClassifierId::MnistLogits => "mnist",
            ClassifierId::YoloDetections => "yolo",
        }
    }

    /// The classifier function, if any.
    pub fn classifier(&self) -> Option<&'static SdcClassifier> {
        match self {
            ClassifierId::None => None,
            ClassifierId::MnistLogits => Some(&MNIST_CLASSIFIER),
            ClassifierId::YoloDetections => Some(&YOLO_CLASSIFIER),
        }
    }
}

/// What kind of campaign a cell runs, with its statistical parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CellKind {
    /// A beam campaign (`mpr-beam`).
    Beam {
        /// Beam hours (sets the fluence denominator).
        hours: f64,
        /// Expected compute strikes to simulate.
        target_candidates: u64,
        /// Domain classifier attached to the campaign.
        classifier: ClassifierId,
        /// How the strike budget is spent (fixed reference or adaptive
        /// stratified sampling with early stopping).
        sampling: SamplingPlan,
    },
    /// A fault-injection campaign (`mpr-fault`).
    Inject {
        /// Number of injections.
        injections: u64,
        /// Fault model sampled per injection.
        model: FaultModel,
        /// Fraction of register flips landing in live state.
        live_fraction: f64,
        /// How the injection budget is spent.
        sampling: SamplingPlan,
    },
    /// An accumulation trial set: `faults` stuck-at configuration
    /// upsets piled up per run, over `trials` runs (the FPGA
    /// no-reprogramming ablation).
    Accumulate {
        /// Accumulated faults per trial.
        faults: u32,
        /// Number of trials.
        trials: u32,
    },
}

/// Canonical token suffix for a sampling plan. The fixed plan encodes
/// as the *empty string*, so every pre-adaptive key — and every cache
/// entry filed under it — stays byte-identical with no KEY_VERSION
/// bump. Adaptive plans append every decision parameter, since each of
/// them changes results.
fn sampling_token(plan: SamplingPlan) -> String {
    match plan {
        SamplingPlan::Fixed => String::new(),
        SamplingPlan::Adaptive(c) => {
            let budget = match c.budget {
                Some(b) => b.to_string(),
                None => "-".to_string(),
            };
            format!(
                ",a=w:{:016x};b:{budget};s:{};r:{}",
                c.ci_width.to_bits(),
                c.strata,
                c.round
            )
        }
    }
}

fn model_token(model: FaultModel) -> String {
    match model {
        FaultModel::SingleBit => "sb".to_string(),
        FaultModel::DoubleBit => "db".to_string(),
        FaultModel::RandomByte => "rb".to_string(),
        FaultModel::StuckBit => "stuck".to_string(),
        FaultModel::Pipeline { pipeline_fraction } => {
            format!("pipe:{:016x}", pipeline_fraction.to_bits())
        }
    }
}

impl CellKind {
    /// Canonical token used in keys. Floats are encoded by their IEEE
    /// bits so the key is byte-stable across formatting changes.
    pub fn token(&self) -> String {
        match self {
            CellKind::Beam {
                hours,
                target_candidates,
                classifier,
                sampling,
            } => format!(
                "beam:h={:016x},n={target_candidates},c={}{}",
                hours.to_bits(),
                classifier.token(),
                sampling_token(*sampling)
            ),
            CellKind::Inject {
                injections,
                model,
                live_fraction,
                sampling,
            } => format!(
                "inj:n={injections},m={},lf={:016x}{}",
                model_token(*model),
                live_fraction.to_bits(),
                sampling_token(*sampling)
            ),
            CellKind::Accumulate { faults, trials } => format!("acc:k={faults},t={trials}"),
        }
    }

    /// The cell's sampling plan (accumulation cells are always fixed).
    pub fn sampling(&self) -> SamplingPlan {
        match self {
            CellKind::Beam { sampling, .. } | CellKind::Inject { sampling, .. } => *sampling,
            CellKind::Accumulate { .. } => SamplingPlan::Fixed,
        }
    }

    /// A copy of this cell with its adaptive strike budget replaced —
    /// the identity of a reallocation-boosted rerun. Fixed cells (and
    /// accumulation cells) come back unchanged.
    pub fn with_sampling_budget(&self, budget: u64) -> CellKind {
        let mut kind = *self;
        match &mut kind {
            CellKind::Beam { sampling, .. } | CellKind::Inject { sampling, .. } => {
                if let SamplingPlan::Adaptive(config) = sampling {
                    config.budget = Some(budget);
                }
            }
            CellKind::Accumulate { .. } => {}
        }
        kind
    }
}

/// The identity of one experiment cell.
///
/// Everything the engine needs to execute the cell is in the key; two
/// equal keys are the same experiment and are executed at most once per
/// study (and at most once *ever* under a shared disk cache).
#[derive(Debug, Clone, PartialEq)]
pub struct CellKey {
    /// Device model the campaign targets.
    pub device: DeviceId,
    /// Workload under test.
    pub workload: WorkloadId,
    /// Data precision.
    pub precision: Precision,
    /// Campaign kind and statistical parameters.
    pub kind: CellKind,
}

impl CellKey {
    /// The canonical, versioned string encoding of this key.
    pub fn canonical(&self) -> String {
        format!(
            "{KEY_VERSION};dev={};wl={};p={};k={}",
            self.device.token(),
            self.workload.token(),
            self.precision.name(),
            self.kind.token()
        )
    }

    /// FNV-1a hash of the canonical encoding.
    pub fn hash64(&self) -> u64 {
        fnv1a64(self.canonical().as_bytes())
    }

    /// The RNG seed for this cell under a study base seed: the base
    /// seed and the key hash are mixed through splitmix64, so every
    /// cell draws an unrelated stream and identical cells requested by
    /// different figures draw the *same* stream by construction.
    pub fn cell_seed(&self, base_seed: u64) -> u64 {
        mix_seed(base_seed, self.hash64())
    }

    /// Whether the device and workload both support the precision.
    pub fn supported(&self) -> bool {
        let dev_ok = match self.kind {
            // Injection and accumulation campaigns bypass the device's
            // execution units; only beam cells need device support.
            CellKind::Beam { .. } => self.device.build().supports(self.precision),
            _ => true,
        };
        dev_ok && self.workload.build().supports(self.precision)
    }
}

impl fmt::Display for CellKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beam_key() -> CellKey {
        CellKey {
            device: DeviceId::TitanV,
            workload: WorkloadId::Gemm { dim: 12 },
            precision: Precision::Single,
            kind: CellKind::Beam {
                hours: 10.0,
                target_candidates: 400,
                classifier: ClassifierId::None,
                sampling: SamplingPlan::Fixed,
            },
        }
    }

    #[test]
    fn canonical_encoding_is_pinned() {
        // The cache file format depends on this string: changing it
        // must be a deliberate KEY_VERSION bump.
        assert_eq!(
            beam_key().canonical(),
            "v2;dev=titan-v;wl=gemm:12;p=single;k=beam:h=4024000000000000,n=400,c=none"
        );
    }

    #[test]
    fn distinct_parameters_produce_distinct_keys() {
        let a = beam_key();
        let mut b = a.clone();
        b.precision = Precision::Half;
        assert_ne!(a.canonical(), b.canonical());
        assert_ne!(a.hash64(), b.hash64());
        let mut c = a.clone();
        c.kind = CellKind::Beam {
            hours: 10.0,
            target_candidates: 401,
            classifier: ClassifierId::None,
            sampling: SamplingPlan::Fixed,
        };
        assert_ne!(a.hash64(), c.hash64());
    }

    #[test]
    fn sampling_plans_key_separately_and_fixed_keys_are_untouched() {
        use mpr_metrics::SamplingConfig;
        let fixed = beam_key();
        let mut adaptive = fixed.clone();
        adaptive.kind = CellKind::Beam {
            hours: 10.0,
            target_candidates: 400,
            classifier: ClassifierId::None,
            sampling: SamplingPlan::Adaptive(SamplingConfig::quick()),
        };
        // Adaptive and fixed results must never share a cache entry.
        assert_ne!(fixed.canonical(), adaptive.canonical());
        // The adaptive token pins every decision parameter.
        assert_eq!(
            adaptive.canonical(),
            "v2;dev=titan-v;wl=gemm:12;p=single;\
             k=beam:h=4024000000000000,n=400,c=none,a=w:3fe999999999999a;b:-;s:4;r:32"
        );
        // A boosted budget is a different experiment.
        let boosted = adaptive.kind.with_sampling_budget(512);
        assert_ne!(boosted.token(), adaptive.kind.token());
        assert!(boosted.token().contains(";b:512;"));
        // Boosting a fixed cell is a no-op.
        assert_eq!(fixed.kind.with_sampling_budget(512), fixed.kind);
        assert_eq!(fixed.kind.sampling(), SamplingPlan::Fixed);
    }

    #[test]
    fn cell_seeds_differ_across_cells_and_base_seeds() {
        let a = beam_key();
        let mut b = a.clone();
        b.precision = Precision::Double;
        assert_ne!(a.cell_seed(1), b.cell_seed(1));
        assert_ne!(a.cell_seed(1), a.cell_seed(2));
        // Same key + same base seed = same stream, always.
        assert_eq!(a.cell_seed(9), a.cell_seed(9));
    }

    #[test]
    fn device_and_workload_round_trip_tokens() {
        for d in [
            DeviceId::TitanV,
            DeviceId::TeslaV100,
            DeviceId::Knc3120a,
            DeviceId::Zynq7000,
        ] {
            assert_eq!(DeviceId::parse(d.token()), Some(d));
        }
        assert_eq!(DeviceId::parse("gpu"), Some(DeviceId::TitanV));
        assert_eq!(DeviceId::parse("tpu"), None);
        let w = WorkloadId::LavaMd {
            boxes: 2,
            particles: 3,
            knc_unit: true,
        };
        assert_eq!(w.token(), "lavamd:2x3:knc");
        assert_eq!(w.golden_key(Precision::Double), "lavamd:2x3:knc@double");
    }

    #[test]
    fn hostile_tokens_pin_tag_and_mode() {
        let flaky = WorkloadId::Hostile {
            tag: 0xAB,
            mode: HostileMode::FlakyGolden { panics: 2 },
        };
        assert_eq!(flaky.token(), "hostile:00000000000000ab:flaky=2");
        let slow = WorkloadId::Hostile {
            tag: 0xAB,
            mode: HostileMode::SlowStrike { millis: 50 },
        };
        assert_eq!(slow.token(), "hostile:00000000000000ab:slow=50ms");
        let ok = WorkloadId::Hostile {
            tag: 0xAB,
            mode: HostileMode::WellBehaved,
        };
        assert_eq!(ok.token(), "hostile:00000000000000ab:ok");
        // Mode and tag are part of the identity: no shared cache
        // entries, no shared golden runs.
        assert_ne!(
            flaky.golden_key(Precision::Single),
            ok.golden_key(Precision::Single)
        );
    }

    #[test]
    fn knc_rejects_half_beam_cells() {
        let key = CellKey {
            device: DeviceId::Knc3120a,
            workload: WorkloadId::Lud { dim: 12 },
            precision: Precision::Half,
            kind: CellKind::Beam {
                hours: 10.0,
                target_candidates: 100,
                classifier: ClassifierId::None,
                sampling: SamplingPlan::Fixed,
            },
        };
        assert!(!key.supported());
    }

    #[test]
    fn classifiers_label_by_name() {
        assert!(ClassifierId::None.classifier().is_none());
        let mnist = ClassifierId::MnistLogits
            .classifier()
            .map(|c| c(&[0.1, 0.8], &[0.9, 0.2]));
        assert_eq!(mnist, Some("critical"));
        let same = ClassifierId::MnistLogits
            .classifier()
            .map(|c| c(&[0.1, 0.8], &[0.2, 0.7]));
        assert_eq!(same, Some("tolerable"));
    }
}
