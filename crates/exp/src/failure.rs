//! Structured per-cell failure records.
//!
//! The paper's harness treats device failures (hangs, crashes, watchdog
//! resets) as measurement events, not as reasons to abandon a session.
//! This module gives the engine the same vocabulary: a cell that
//! panics or blows its watchdog deadline becomes a [`CellFailure`]
//! value that travels through result vectors, manifests, and the CLI's
//! failure table — never a raw unwind.

use mpr_metrics::Table;
use std::fmt;

/// Why a cell's final attempt did not produce a result.
#[derive(Debug, Clone, PartialEq)]
pub enum FailureKind {
    /// The cell body panicked; the captured panic message follows.
    Panicked {
        /// The panic payload, rendered to text.
        message: String,
    },
    /// The cell exceeded its watchdog deadline and was cooperatively
    /// cancelled at a strike-batch boundary.
    Hung {
        /// The configured per-cell timeout, in seconds.
        timeout_s: f64,
    },
    /// The whole run was shut down (plan-level cancel) before this
    /// cell could finish. No attempt budget was consumed: the state is
    /// fully resumable and a `--resume` run re-executes exactly the
    /// cancelled subset.
    Cancelled,
}

impl FailureKind {
    /// Short status token for manifests and tables
    /// (`failed` / `hung` / `cancelled`).
    pub fn status(&self) -> &'static str {
        match self {
            FailureKind::Panicked { .. } => "failed",
            FailureKind::Hung { .. } => "hung",
            FailureKind::Cancelled => "cancelled",
        }
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::Panicked { message } => write!(f, "panicked: {message}"),
            FailureKind::Hung { timeout_s } => {
                write!(f, "hung: exceeded the {timeout_s}s watchdog deadline")
            }
            FailureKind::Cancelled => {
                f.write_str("cancelled: run shut down before the cell finished; resume re-runs it")
            }
        }
    }
}

/// One cell that exhausted its attempt budget without producing a
/// result. Healthy cells in the same plan are unaffected — the engine
/// completes every one of them and reports failures per cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellFailure {
    /// The canonical cell key.
    pub cell: String,
    /// Total attempts made (first run plus retries).
    pub attempts: u32,
    /// How the final attempt died.
    pub kind: FailureKind,
}

impl fmt::Display for CellFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} after {} attempt{}: {}",
            self.cell,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.kind
        )
    }
}

impl std::error::Error for CellFailure {}

/// Renders failures as the per-cell table the CLI prints instead of a
/// panic backtrace. Duplicate requests for one cell share a failure;
/// callers pass the deduplicated list.
pub fn failure_table(failures: &[CellFailure]) -> String {
    let mut t = Table::new(vec!["cell", "status", "attempts", "detail"])
        .with_title(format!("cell failures ({})", failures.len()));
    for f in failures {
        t.row(vec![
            f.cell.clone(),
            f.kind.status().to_string(),
            f.attempts.to_string(),
            f.kind.to_string(),
        ]);
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_cell_and_the_cause() {
        let f = CellFailure {
            cell: "v2;dev=titan-v;wl=hostile".to_string(),
            attempts: 3,
            kind: FailureKind::Panicked {
                message: "staged golden failure".to_string(),
            },
        };
        let s = f.to_string();
        assert!(s.contains("3 attempts"));
        assert!(s.contains("panicked: staged golden failure"));
        let h = CellFailure {
            cell: "c".to_string(),
            attempts: 1,
            kind: FailureKind::Hung { timeout_s: 5.0 },
        };
        assert!(h.to_string().contains("1 attempt:"));
        assert!(h.to_string().contains("5s watchdog"));
    }

    #[test]
    fn table_lists_every_failure() {
        let failures = vec![
            CellFailure {
                cell: "cell-a".to_string(),
                attempts: 2,
                kind: FailureKind::Hung { timeout_s: 0.5 },
            },
            CellFailure {
                cell: "cell-b".to_string(),
                attempts: 1,
                kind: FailureKind::Panicked {
                    message: "boom".to_string(),
                },
            },
        ];
        let rendered = failure_table(&failures);
        assert!(rendered.contains("cell failures (2)"));
        assert!(rendered.contains("cell-a"));
        assert!(rendered.contains("hung"));
        assert!(rendered.contains("cell-b"));
        assert!(rendered.contains("boom"));
    }
}
