//! The campaign manifest: a per-cache-directory ledger of cell
//! statuses that makes campaigns resumable.
//!
//! The result cache already memoizes *successful* cells; the manifest
//! adds what the cache cannot express — which cells failed or hung,
//! after how many attempts, and under which plan — so a `--resume` run
//! can name exactly the subset it will re-execute and a CLI can render
//! the previous run's failure table without re-running anything.
//!
//! One `manifest.json` lives at the root of the cache directory. It is
//! written with the same tmp+rename discipline as cache entries and
//! *merged* on write: cells recorded by earlier plans against the same
//! directory are preserved, so several studies can share one cache.

use crate::cache;
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Identifies the manifest layout, independent of cache and key versions.
const FORMAT: &str = "mpr-exp-manifest-v1";

/// The manifest file name inside a cache directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// The manifest path for a cache directory.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join(MANIFEST_FILE)
}

/// Final status of one cell in the ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellState {
    /// The cell completed and its result is in the cache.
    Ok,
    /// The cell exhausted its attempts panicking.
    Failed,
    /// The cell exhausted its attempts against the watchdog deadline.
    Hung,
}

impl CellState {
    /// Canonical token stored in the manifest.
    pub fn token(&self) -> &'static str {
        match self {
            CellState::Ok => "ok",
            CellState::Failed => "failed",
            CellState::Hung => "hung",
        }
    }

    fn parse(s: &str) -> Option<CellState> {
        match s {
            "ok" => Some(CellState::Ok),
            "failed" => Some(CellState::Failed),
            "hung" => Some(CellState::Hung),
            _ => None,
        }
    }
}

impl fmt::Display for CellState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// One cell's ledger entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellStatus {
    /// Final status of the cell's last run.
    pub state: CellState,
    /// Attempts the last run made (0 = served from cache, never
    /// re-executed).
    pub attempts: u32,
    /// Human-readable detail (the failure message; empty for `ok`).
    pub detail: String,
}

/// The campaign ledger for one cache directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// FNV-1a hash over the sorted unique store keys of the most
    /// recent plan written against this directory.
    pub plan_hash: u64,
    /// Store key → status, across every plan that used this directory.
    pub cells: BTreeMap<String, CellStatus>,
}

impl Manifest {
    /// An empty ledger for a plan.
    pub fn new(plan_hash: u64) -> Manifest {
        Manifest {
            plan_hash,
            cells: BTreeMap::new(),
        }
    }

    /// Records (or overwrites) one cell's status.
    pub fn record(&mut self, store_key: impl Into<String>, status: CellStatus) {
        self.cells.insert(store_key.into(), status);
    }

    /// Store keys whose last run did not complete, in sorted order —
    /// the exact subset a `--resume` run re-executes.
    pub fn unfinished(&self) -> Vec<&str> {
        self.cells
            .iter()
            .filter(|(_, s)| s.state != CellState::Ok)
            .map(|(k, _)| k.as_str())
            .collect()
    }

    /// Reads the ledger from a cache directory. Absent, foreign, or
    /// undecodable manifests all return `None`: the ledger is derived
    /// bookkeeping and is fully rewritten by the next run, so a damaged
    /// one is simply ignored rather than quarantined.
    pub fn load(dir: &Path) -> Option<Manifest> {
        let body = std::fs::read_to_string(manifest_path(dir)).ok()?;
        let value = cache::parse(&body)?;
        let obj = value.as_obj()?;
        if obj.get("format")?.as_str()? != FORMAT {
            return None;
        }
        let plan_hash = u64::from_str_radix(obj.get("plan_hash")?.as_str()?, 16).ok()?;
        let mut cells = BTreeMap::new();
        for (key, entry) in obj.get("cells")?.as_obj()? {
            let entry = entry.as_obj()?;
            cells.insert(
                key.clone(),
                CellStatus {
                    state: CellState::parse(entry.get("status")?.as_str()?)?,
                    attempts: u32::try_from(entry.get("attempts")?.as_u64()?).ok()?,
                    detail: entry.get("detail")?.as_str()?.to_string(),
                },
            );
        }
        Some(Manifest { plan_hash, cells })
    }

    /// Writes the ledger atomically (tmp+rename, like cache entries).
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = manifest_path(dir);
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, self.serialize())?;
        std::fs::rename(&tmp, &path)
    }

    fn serialize(&self) -> String {
        let mut out = String::with_capacity(256 + self.cells.len() * 128);
        out.push_str("{\n");
        out.push_str(&format!("  \"format\": {},\n", cache::str_json(FORMAT)));
        out.push_str(&format!("  \"plan_hash\": \"{:016x}\",\n", self.plan_hash));
        out.push_str("  \"cells\": {");
        let mut first = true;
        for (key, status) in &self.cells {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {}: {{\"status\": {}, \"attempts\": {}, \"detail\": {}}}",
                cache::str_json(key),
                cache::str_json(status.state.token()),
                status.attempts,
                cache::str_json(&status.detail)
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        let mut m = Manifest::new(0xDEAD_BEEF_0123_4567);
        m.record(
            "seed=01;v2;dev=a",
            CellStatus {
                state: CellState::Ok,
                attempts: 1,
                detail: String::new(),
            },
        );
        m.record(
            "seed=01;v2;dev=b",
            CellStatus {
                state: CellState::Failed,
                attempts: 3,
                detail: "panicked: staged \"golden\" failure".to_string(),
            },
        );
        m.record(
            "seed=01;v2;dev=c",
            CellStatus {
                state: CellState::Hung,
                attempts: 2,
                detail: "hung: exceeded the 0.05s watchdog deadline".to_string(),
            },
        );
        m
    }

    #[test]
    fn round_trips_through_disk() {
        let dir = std::env::temp_dir().join("mpr-exp-manifest-test-rt");
        let m = sample();
        m.save(&dir).expect("save");
        let loaded = Manifest::load(&dir).expect("load");
        assert_eq!(loaded, m);
        assert_eq!(
            loaded.unfinished(),
            vec!["seed=01;v2;dev=b", "seed=01;v2;dev=c"]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn absent_or_damaged_manifests_load_as_none() {
        let dir = std::env::temp_dir().join("mpr-exp-manifest-test-bad");
        assert!(Manifest::load(&dir).is_none());
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(manifest_path(&dir), "{\"format\": \"mpr-exp-man").expect("write");
        assert!(Manifest::load(&dir).is_none());
        // A future format version is ignored, not an error.
        std::fs::write(
            manifest_path(&dir),
            "{\"format\": \"mpr-exp-manifest-v99\", \"plan_hash\": \"00\", \"cells\": {}}",
        )
        .expect("write");
        assert!(Manifest::load(&dir).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_overwrites_and_merge_preserves() {
        // The engine's merge-on-write: load prior, record this plan's
        // cells, save. Cells from other plans survive.
        let dir = std::env::temp_dir().join("mpr-exp-manifest-test-merge");
        sample().save(&dir).expect("save");
        let mut next = Manifest::load(&dir).expect("load");
        next.plan_hash = 0x42;
        next.record(
            "seed=01;v2;dev=b",
            CellStatus {
                state: CellState::Ok,
                attempts: 2,
                detail: String::new(),
            },
        );
        next.save(&dir).expect("save");
        let merged = Manifest::load(&dir).expect("load");
        assert_eq!(merged.plan_hash, 0x42);
        assert_eq!(merged.cells.len(), 3, "other plans' cells preserved");
        assert_eq!(merged.unfinished(), vec!["seed=01;v2;dev=c"]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
