//! The campaign manifest: a per-cache-directory ledger of cell
//! statuses that makes campaigns resumable.
//!
//! The result cache already memoizes *successful* cells; the manifest
//! adds what the cache cannot express — which cells failed or hung,
//! after how many attempts, and under which plan — so a `--resume` run
//! can name exactly the subset it will re-execute and a CLI can render
//! the previous run's failure table without re-running anything.
//!
//! One `manifest.json` lives at the root of the cache directory. It is
//! written with the same tmp+rename discipline as cache entries and
//! *merged* on write: cells recorded by earlier plans against the same
//! directory are preserved, so several studies can share one cache.

use crate::cache;
use crate::vfs::{commit_durable, RealFs, Vfs};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Identifies the manifest layout, independent of cache and key versions.
const FORMAT: &str = "mpr-exp-manifest-v1";

/// The manifest file name inside a cache directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// The manifest path for a cache directory.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join(MANIFEST_FILE)
}

/// Final status of one cell in the ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellState {
    /// The cell completed and its result is in the cache.
    Ok,
    /// The cell exhausted its attempts panicking.
    Failed,
    /// The cell exhausted its attempts against the watchdog deadline.
    Hung,
    /// The run was cancelled before (or while) the cell executed; a
    /// resume re-runs it from scratch.
    Cancelled,
}

impl CellState {
    /// Canonical token stored in the manifest.
    pub fn token(&self) -> &'static str {
        match self {
            CellState::Ok => "ok",
            CellState::Failed => "failed",
            CellState::Hung => "hung",
            CellState::Cancelled => "cancelled",
        }
    }

    fn parse(s: &str) -> Option<CellState> {
        match s {
            "ok" => Some(CellState::Ok),
            "failed" => Some(CellState::Failed),
            "hung" => Some(CellState::Hung),
            "cancelled" => Some(CellState::Cancelled),
            _ => None,
        }
    }
}

impl fmt::Display for CellState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// One cell's ledger entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellStatus {
    /// Final status of the cell's last run.
    pub state: CellState,
    /// Attempts the last run made (0 = served from cache, never
    /// re-executed).
    pub attempts: u32,
    /// Human-readable detail (the failure message; empty for `ok`).
    pub detail: String,
}

/// The campaign ledger for one cache directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// FNV-1a hash over the sorted unique store keys of the most
    /// recent plan written against this directory.
    pub plan_hash: u64,
    /// Store key → status, across every plan that used this directory.
    pub cells: BTreeMap<String, CellStatus>,
}

/// Classification of the bytes found at the manifest path.
enum Decoded {
    /// A well-formed ledger in our format.
    Ours(Manifest),
    /// Well-formed, but another format version — left alone.
    Foreign,
    /// Undecodable: quarantine it.
    Corrupt,
}

impl Manifest {
    /// An empty ledger for a plan.
    pub fn new(plan_hash: u64) -> Manifest {
        Manifest {
            plan_hash,
            cells: BTreeMap::new(),
        }
    }

    /// Records (or overwrites) one cell's status.
    pub fn record(&mut self, store_key: impl Into<String>, status: CellStatus) {
        self.cells.insert(store_key.into(), status);
    }

    /// Store keys whose last run did not complete, in sorted order —
    /// the exact subset a `--resume` run re-executes.
    pub fn unfinished(&self) -> Vec<&str> {
        self.cells
            .iter()
            .filter(|(_, s)| s.state != CellState::Ok)
            .map(|(k, _)| k.as_str())
            .collect()
    }

    /// Reads the ledger from a cache directory (see
    /// [`Manifest::load_traced`]; this is the [`RealFs`] convenience
    /// form that drops the quarantine flag).
    pub fn load(dir: &Path) -> Option<Manifest> {
        Manifest::load_traced(&RealFs, dir).0
    }

    /// Reads the ledger from a cache directory, reporting whether a
    /// damaged one was quarantined.
    ///
    /// Absent or foreign (other format version) manifests load as
    /// `(None, false)` — nothing is wrong, there is just no ledger for
    /// us. Bytes that exist but do not decode — a torn write, bit rot —
    /// are moved aside to `manifest.json.corrupt` exactly like a
    /// corrupt cache entry, returning `(None, true)`: resume then
    /// falls back to the cache-driven path (missing entries
    /// re-execute), so a damaged ledger costs re-planning, never a
    /// wrong answer.
    pub fn load_traced(vfs: &dyn Vfs, dir: &Path) -> (Option<Manifest>, bool) {
        let path = manifest_path(dir);
        let Ok(bytes) = vfs.read(&path) else {
            return (None, false);
        };
        match Manifest::decode(&bytes) {
            Decoded::Ours(manifest) => (Some(manifest), false),
            Decoded::Foreign => (None, false),
            Decoded::Corrupt => {
                let quarantine = path.with_extension("json.corrupt");
                if vfs.rename(&path, &quarantine).is_ok() {
                    eprintln!(
                        "mpr-exp: quarantined corrupt manifest {} -> {}",
                        path.display(),
                        quarantine.display()
                    );
                    (None, true)
                } else {
                    (None, false)
                }
            }
        }
    }

    fn decode(bytes: &[u8]) -> Decoded {
        let Ok(body) = std::str::from_utf8(bytes) else {
            return Decoded::Corrupt;
        };
        let decoded = (|| {
            let value = cache::parse(body)?;
            let obj = value.as_obj()?;
            if obj.get("format")?.as_str()? != FORMAT {
                return Some(Decoded::Foreign);
            }
            let plan_hash = u64::from_str_radix(obj.get("plan_hash")?.as_str()?, 16).ok()?;
            let mut cells = BTreeMap::new();
            for (key, entry) in obj.get("cells")?.as_obj()? {
                let entry = entry.as_obj()?;
                cells.insert(
                    key.clone(),
                    CellStatus {
                        state: CellState::parse(entry.get("status")?.as_str()?)?,
                        attempts: u32::try_from(entry.get("attempts")?.as_u64()?).ok()?,
                        detail: entry.get("detail")?.as_str()?.to_string(),
                    },
                );
            }
            Some(Decoded::Ours(Manifest { plan_hash, cells }))
        })();
        decoded.unwrap_or(Decoded::Corrupt)
    }

    /// Writes the ledger crash-durably via [`commit_durable`] on the
    /// real filesystem.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        self.save_on(&RealFs, dir)
    }

    /// Writes the ledger crash-durably (tmp write, file fsync, rename,
    /// parent-directory fsync) through an explicit filesystem.
    pub fn save_on(&self, vfs: &dyn Vfs, dir: &Path) -> std::io::Result<()> {
        commit_durable(vfs, &manifest_path(dir), self.serialize().as_bytes())
    }

    fn serialize(&self) -> String {
        let mut out = String::with_capacity(256 + self.cells.len() * 128);
        out.push_str("{\n");
        out.push_str(&format!("  \"format\": {},\n", cache::str_json(FORMAT)));
        out.push_str(&format!("  \"plan_hash\": \"{:016x}\",\n", self.plan_hash));
        out.push_str("  \"cells\": {");
        let mut first = true;
        for (key, status) in &self.cells {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {}: {{\"status\": {}, \"attempts\": {}, \"detail\": {}}}",
                cache::str_json(key),
                cache::str_json(status.state.token()),
                status.attempts,
                cache::str_json(&status.detail)
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        let mut m = Manifest::new(0xDEAD_BEEF_0123_4567);
        m.record(
            "seed=01;v2;dev=a",
            CellStatus {
                state: CellState::Ok,
                attempts: 1,
                detail: String::new(),
            },
        );
        m.record(
            "seed=01;v2;dev=b",
            CellStatus {
                state: CellState::Failed,
                attempts: 3,
                detail: "panicked: staged \"golden\" failure".to_string(),
            },
        );
        m.record(
            "seed=01;v2;dev=c",
            CellStatus {
                state: CellState::Hung,
                attempts: 2,
                detail: "hung: exceeded the 0.05s watchdog deadline".to_string(),
            },
        );
        m
    }

    #[test]
    fn round_trips_through_disk() {
        let dir = std::env::temp_dir().join("mpr-exp-manifest-test-rt");
        let m = sample();
        m.save(&dir).expect("save");
        let loaded = Manifest::load(&dir).expect("load");
        assert_eq!(loaded, m);
        assert_eq!(
            loaded.unfinished(),
            vec!["seed=01;v2;dev=b", "seed=01;v2;dev=c"]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn absent_or_damaged_manifests_load_as_none() {
        let dir = std::env::temp_dir().join("mpr-exp-manifest-test-bad");
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(Manifest::load_traced(&RealFs, &dir), (None, false));
        std::fs::create_dir_all(&dir).expect("mkdir");

        // Torn bytes: quarantined to manifest.json.corrupt.
        std::fs::write(manifest_path(&dir), "{\"format\": \"mpr-exp-man").expect("write");
        assert_eq!(Manifest::load_traced(&RealFs, &dir), (None, true));
        assert!(!manifest_path(&dir).exists(), "damaged ledger moved aside");
        let quarantine = manifest_path(&dir).with_extension("json.corrupt");
        assert!(quarantine.exists());
        // The quarantined bytes are never re-parsed.
        assert_eq!(Manifest::load_traced(&RealFs, &dir), (None, false));

        // A future format version is ignored, not quarantined.
        std::fs::write(
            manifest_path(&dir),
            "{\"format\": \"mpr-exp-manifest-v99\", \"plan_hash\": \"00\", \"cells\": {}}",
        )
        .expect("write");
        assert_eq!(Manifest::load_traced(&RealFs, &dir), (None, false));
        assert!(manifest_path(&dir).exists(), "foreign ledger left alone");

        // Invalid UTF-8 counts as corruption too.
        std::fs::remove_file(&quarantine).expect("clear quarantine");
        std::fs::write(manifest_path(&dir), [0xFFu8, 0xFE, b'{']).expect("write");
        assert_eq!(Manifest::load_traced(&RealFs, &dir), (None, true));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancelled_state_round_trips() {
        let dir = std::env::temp_dir().join("mpr-exp-manifest-test-cancel");
        let _ = std::fs::remove_dir_all(&dir);
        let mut m = Manifest::new(0x7);
        m.record(
            "seed=01;v2;dev=z",
            CellStatus {
                state: CellState::Cancelled,
                attempts: 0,
                detail: "cancelled: run shut down before the cell executed".to_string(),
            },
        );
        m.save(&dir).expect("save");
        let loaded = Manifest::load(&dir).expect("load");
        assert_eq!(loaded, m);
        assert_eq!(loaded.unfinished(), vec!["seed=01;v2;dev=z"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_overwrites_and_merge_preserves() {
        // The engine's merge-on-write: load prior, record this plan's
        // cells, save. Cells from other plans survive.
        let dir = std::env::temp_dir().join("mpr-exp-manifest-test-merge");
        sample().save(&dir).expect("save");
        let mut next = Manifest::load(&dir).expect("load");
        next.plan_hash = 0x42;
        next.record(
            "seed=01;v2;dev=b",
            CellStatus {
                state: CellState::Ok,
                attempts: 2,
                detail: String::new(),
            },
        );
        next.save(&dir).expect("save");
        let merged = Manifest::load(&dir).expect("load");
        assert_eq!(merged.plan_hash, 0x42);
        assert_eq!(merged.cells.len(), 3, "other plans' cells preserved");
        assert_eq!(merged.unfinished(), vec!["seed=01;v2;dev=c"]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
