//! The virtual filesystem boundary: every byte the engine persists —
//! cache entries, quarantines, the campaign manifest — moves through
//! the [`Vfs`] trait, so the persistence layer can be subjected to the
//! same hostile treatment the kernels get from fault injection.
//!
//! Two implementations ship:
//!
//! * [`RealFs`] — the passthrough to `std::fs`, plus the durability
//!   primitives (`sync_file`, `sync_dir`) the commit path needs.
//! * [`ChaosFs`] — a deterministic fault injector wrapping any inner
//!   `Vfs`. Faults are drawn from a seeded splitmix64 schedule keyed by
//!   *operation identity* — `(operation kind, file name, per-name
//!   occurrence index)` — never by global arrival order, so the same
//!   `--chaos-seed` injects the same faults regardless of thread count
//!   or which worker touches the file first. Directory-level
//!   operations have no distinguishing name and collapse to one
//!   identity per operation kind. The one arrival-order knob is the
//!   simulated crash point (`crash_at`): a fail-stop kill after the
//!   first K operations, exact under one thread and approximate above.
//!
//! The durable commit discipline lives here too: [`commit_durable`]
//! writes `tmp` → fsyncs the file → renames into place → fsyncs the
//! parent directory, so a committed entry survives a power cut and a
//! torn write is only ever visible as a stale `*.tmp` the store sweeps
//! on open.
// mpr-allow-file: vfs-bypass -- this module IS the Vfs implementation
// layer; RealFs is the single sanctioned home of direct std::fs calls
// in mpr-exp.

use mpr_obs::{fnv1a64, mix_seed, splitmix64, Counter, Recorder};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Filesystem operations the persistence layer is allowed to perform.
///
/// Each method is one *operation* from the chaos layer's point of
/// view: one schedule draw, one potential fault, one trace line.
pub trait Vfs: Send + Sync + std::fmt::Debug {
    /// Reads a file's full contents.
    ///
    /// # Errors
    ///
    /// Propagates the underlying (or injected) I/O error.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Writes a file's full contents (create or truncate).
    ///
    /// # Errors
    ///
    /// Propagates the underlying (or injected) I/O error; an injected
    /// torn write may leave a prefix of `bytes` behind.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Atomically renames `from` to `to`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying (or injected) I/O error.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes a file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying (or injected) I/O error.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Creates a directory and its ancestors.
    ///
    /// # Errors
    ///
    /// Propagates the underlying (or injected) I/O error.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Flushes a file's contents and metadata to stable storage.
    ///
    /// # Errors
    ///
    /// Propagates the underlying (or injected) I/O error.
    fn sync_file(&self, path: &Path) -> io::Result<()>;

    /// Flushes a directory, making completed renames in it durable.
    ///
    /// # Errors
    ///
    /// Propagates the underlying (or injected) I/O error.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;

    /// Lists a directory's entries, sorted by path so iteration order
    /// never depends on the underlying filesystem.
    ///
    /// # Errors
    ///
    /// Propagates the underlying (or injected) I/O error.
    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;
}

/// The passthrough [`Vfs`]: real files, plus real fsync.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealFs;

impl Vfs for RealFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        // On Linux a directory opens as a plain handle and sync_all
        // issues the fsync that makes completed renames durable.
        std::fs::File::open(path)?.sync_all()
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(path)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .collect();
        entries.sort();
        Ok(entries)
    }
}

/// Commits `bytes` to `path` crash-durably: parent created, `tmp`
/// written and fsynced, renamed into place, parent directory fsynced.
/// After this returns `Ok`, the entry survives a power cut; if it
/// returns `Err`, the only possible residue is a `*.tmp` file the
/// store's open-time sweep removes — the destination is either the old
/// content or the new, never a torn mix.
///
/// # Errors
///
/// Propagates the first failing operation's error. The tmp file is
/// deliberately *not* cleaned up here: under an injected crash no
/// cleanup code runs either, and the sweep is the recovery path both
/// cases share.
pub fn commit_durable(vfs: &dyn Vfs, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let parent = path
        .parent()
        .ok_or_else(|| io::Error::other("commit path has no parent directory"))?;
    vfs.create_dir_all(parent)?;
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| io::Error::other("commit path has no file name"))?;
    let tmp = path.with_file_name(format!("{file_name}.tmp"));
    vfs.write(&tmp, bytes)?;
    vfs.sync_file(&tmp)?;
    vfs.rename(&tmp, path)?;
    vfs.sync_dir(parent)
}

/// Knobs of the deterministic fault schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed of the splitmix64 fault schedule.
    pub seed: u64,
    /// Per-operation fault probability in `[0, 1]`.
    pub rate: f64,
    /// Fail-stop crash point: the first `crash_at` operations execute,
    /// every later one fails as if the process had been killed.
    pub crash_at: Option<u64>,
}

impl ChaosConfig {
    /// A schedule that injects nothing (useful for counting operations).
    pub fn quiet(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            rate: 0.0,
            crash_at: None,
        }
    }
}

/// Injected fault kinds, in counter order.
const FAULT_KINDS: [&str; 7] = [
    "write_fail",
    "torn_write",
    "enospc",
    "read_fail",
    "bit_flip",
    "rename_fail",
    "op_fail",
];

const WRITE_FAIL: usize = 0;
const TORN_WRITE: usize = 1;
const ENOSPC: usize = 2;
const READ_FAIL: usize = 3;
const BIT_FLIP: usize = 4;
const RENAME_FAIL: usize = 5;
const OP_FAIL: usize = 6;

/// A point-in-time snapshot of a [`ChaosFs`]'s accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosStats {
    /// Operations that reached the chaos layer.
    pub ops: u64,
    /// Injected faults per kind, in a stable order.
    pub injected: Vec<(&'static str, u64)>,
    /// Operations that executed cleanly (no fault, no crash).
    pub survived: u64,
    /// Whether the simulated crash point was reached.
    pub crashed: bool,
}

impl ChaosStats {
    /// Total injected faults across every kind.
    pub fn injected_total(&self) -> u64 {
        self.injected.iter().map(|(_, n)| n).sum()
    }
}

/// A [`Vfs`] that injects deterministic faults in front of an inner
/// filesystem. See the module docs for the schedule's identity keying
/// and the crash model.
pub struct ChaosFs {
    inner: Arc<dyn Vfs>,
    cfg: ChaosConfig,
    /// Global arrival-order operation counter (drives `crash_at`).
    ops: AtomicU64,
    crashed: AtomicBool,
    /// Per `(operation, name)` occurrence counters — the deterministic
    /// part of an operation's identity.
    seq: Mutex<BTreeMap<String, u64>>,
    injected: [AtomicU64; 7],
    survived: AtomicU64,
    /// Human-readable per-operation log, in arrival order. Entries name
    /// only file names (never full paths), so traces compare across
    /// runs in different directories.
    trace: Mutex<Vec<String>>,
}

impl std::fmt::Debug for ChaosFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosFs")
            .field("cfg", &self.cfg)
            .field("ops", &self.ops.load(Ordering::Relaxed))
            .field("crashed", &self.crashed.load(Ordering::Relaxed))
            .finish()
    }
}

/// What the schedule decided for one operation.
enum Decision {
    /// Execute the inner operation untouched.
    Clean,
    /// Inject a fault; the entropy picks the kind, torn lengths, and
    /// flipped bits.
    Fault(u64),
}

impl ChaosFs {
    /// A chaos layer over the real filesystem.
    pub fn new(cfg: ChaosConfig) -> ChaosFs {
        ChaosFs::over(Arc::new(RealFs), cfg)
    }

    /// A chaos layer over an arbitrary inner [`Vfs`].
    pub fn over(inner: Arc<dyn Vfs>, cfg: ChaosConfig) -> ChaosFs {
        ChaosFs {
            inner,
            cfg,
            ops: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
            seq: Mutex::new(BTreeMap::new()),
            injected: std::array::from_fn(|_| AtomicU64::new(0)),
            survived: AtomicU64::new(0),
            trace: Mutex::new(Vec::new()),
        }
    }

    /// The configured schedule.
    pub fn config(&self) -> ChaosConfig {
        self.cfg
    }

    /// Snapshot of operation/fault accounting.
    pub fn stats(&self) -> ChaosStats {
        ChaosStats {
            ops: self.ops.load(Ordering::Relaxed),
            injected: FAULT_KINDS
                .iter()
                .enumerate()
                .map(|(i, name)| (*name, self.injected[i].load(Ordering::Relaxed)))
                .collect(),
            survived: self.survived.load(Ordering::Relaxed),
            crashed: self.crashed.load(Ordering::Relaxed),
        }
    }

    /// The per-operation log in arrival order (thread-dependent).
    pub fn trace(&self) -> Vec<String> {
        // mpr-allow: panic-hygiene -- a poisoned trace lock means a sibling holder panicked; the trace is then meaningless
        self.trace.lock().expect("chaos trace lock").clone()
    }

    /// The per-operation log sorted lexically — identical across thread
    /// counts for the same schedule, the form tests compare.
    pub fn trace_sorted(&self) -> Vec<String> {
        let mut t = self.trace();
        t.sort_unstable();
        t
    }

    /// Emits the accounting as observability counters:
    /// `chaos.ops`, `chaos.injected.<kind>`, `chaos.survived`, and
    /// `chaos.crashed` (0/1).
    pub fn record_to(&self, rec: &dyn Recorder) {
        let stats = self.stats();
        Counter::new(rec, "chaos.ops", "").add(stats.ops);
        for (kind, n) in &stats.injected {
            if *n > 0 {
                Counter::new(rec, "chaos.injected", kind).add(*n);
            }
        }
        Counter::new(rec, "chaos.survived", "").add(stats.survived);
        Counter::new(rec, "chaos.crashed", "").add(u64::from(stats.crashed));
    }

    /// The identity name of a path: its file name, or `<dir>` for
    /// directory-level operations (which have no stable name — temp
    /// directories differ across runs).
    fn name_of(path: &Path, dir_op: bool) -> String {
        if dir_op {
            return "<dir>".to_string();
        }
        path.file_name()
            .and_then(|n| n.to_str())
            .map_or_else(|| "<dir>".to_string(), str::to_string)
    }

    /// One schedule draw. Increments the arrival counter, applies the
    /// fail-stop crash, then decides the operation's fate from its
    /// identity alone.
    fn draw(&self, op: &'static str, name: &str) -> io::Result<Decision> {
        let idx = self.ops.fetch_add(1, Ordering::Relaxed);
        if self.crashed.load(Ordering::Relaxed) || self.cfg.crash_at.is_some_and(|k| idx >= k) {
            self.crashed.store(true, Ordering::Relaxed);
            self.log(op, name, "crashed");
            return Err(io::Error::other(format!(
                "chaos: simulated crash (operation {idx} past crash point)"
            )));
        }
        if self.cfg.rate <= 0.0 {
            return Ok(Decision::Clean);
        }
        let n = if name == "<dir>" {
            // Directory operations collapse to one identity per kind;
            // see the module docs.
            0
        } else {
            // mpr-allow: panic-hygiene -- a poisoned schedule lock means a sibling holder panicked; determinism is already lost
            let mut seq = self.seq.lock().expect("chaos schedule lock");
            let slot = seq.entry(format!("{op}:{name}")).or_insert(0);
            let n = *slot;
            *slot += 1;
            n
        };
        let identity = format!("{op}:{name}:{n}");
        let r = mix_seed(self.cfg.seed, fnv1a64(identity.as_bytes()));
        // 53 uniform bits → [0, 1); compare against the fault rate.
        let unit = (r >> 11) as f64 / (1u64 << 53) as f64;
        if unit < self.cfg.rate {
            Ok(Decision::Fault(splitmix64(r)))
        } else {
            Ok(Decision::Clean)
        }
    }

    fn log(&self, op: &str, name: &str, outcome: &str) {
        // mpr-allow: panic-hygiene -- a poisoned trace lock means a sibling holder panicked; the trace is then meaningless
        let mut t = self.trace.lock().expect("chaos trace lock");
        t.push(format!("{op} {name} -> {outcome}"));
    }

    fn inject(&self, kind: usize) {
        if let Some(counter) = self.injected.get(kind) {
            counter.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Fault-kind label without a panicking index: a bogus kind (none
    /// exist today) degrades to a generic label instead of an unwind.
    fn fault_name(kind: usize) -> &'static str {
        FAULT_KINDS.get(kind).copied().unwrap_or("fault")
    }

    fn clean(&self, op: &'static str, name: &str) {
        self.survived.fetch_add(1, Ordering::Relaxed);
        self.log(op, name, "ok");
    }

    fn fail(&self, op: &'static str, name: &str, kind: usize) -> io::Error {
        self.inject(kind);
        self.log(op, name, ChaosFs::fault_name(kind));
        let errkind = if kind == ENOSPC {
            io::ErrorKind::StorageFull
        } else {
            io::ErrorKind::Other
        };
        io::Error::new(
            errkind,
            format!(
                "chaos: injected {} on {op} {name}",
                ChaosFs::fault_name(kind)
            ),
        )
    }
}

impl Vfs for ChaosFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let name = ChaosFs::name_of(path, false);
        match self.draw("read", &name)? {
            Decision::Clean => {
                let bytes = self.inner.read(path)?;
                self.clean("read", &name);
                Ok(bytes)
            }
            Decision::Fault(extra) => {
                if extra.is_multiple_of(2) {
                    return Err(self.fail("read", &name, READ_FAIL));
                }
                // Bit rot: the read succeeds but one bit lies. An
                // unreadable or empty file degrades to a plain failure.
                let mut bytes = self
                    .inner
                    .read(path)
                    .map_err(|_| self.fail("read", &name, READ_FAIL))?;
                if bytes.is_empty() {
                    return Err(self.fail("read", &name, READ_FAIL));
                }
                let bit = (extra >> 8) % (bytes.len() as u64 * 8);
                if let Some(byte) = bytes.get_mut((bit / 8) as usize) {
                    *byte ^= 1 << (bit % 8);
                }
                self.inject(BIT_FLIP);
                self.log("read", &name, ChaosFs::fault_name(BIT_FLIP));
                Ok(bytes)
            }
        }
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let name = ChaosFs::name_of(path, false);
        match self.draw("write", &name)? {
            Decision::Clean => {
                self.inner.write(path, bytes)?;
                self.clean("write", &name);
                Ok(())
            }
            Decision::Fault(extra) => match extra % 3 {
                0 => Err(self.fail("write", &name, WRITE_FAIL)),
                1 => {
                    // Torn write: half the bytes land, then the error.
                    let half = bytes.get(..bytes.len() / 2).unwrap_or(&[]);
                    let _ = self.inner.write(path, half);
                    Err(self.fail("write", &name, TORN_WRITE))
                }
                _ => {
                    // ENOSPC after N bytes: a schedule-derived prefix
                    // fits, the rest does not.
                    let keep = if bytes.is_empty() {
                        0
                    } else {
                        ((extra >> 2) % bytes.len() as u64) as usize
                    };
                    let prefix = bytes.get(..keep).unwrap_or(&[]);
                    let _ = self.inner.write(path, prefix);
                    Err(self.fail("write", &name, ENOSPC))
                }
            },
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let name = ChaosFs::name_of(to, false);
        match self.draw("rename", &name)? {
            Decision::Clean => {
                self.inner.rename(from, to)?;
                self.clean("rename", &name);
                Ok(())
            }
            Decision::Fault(_) => Err(self.fail("rename", &name, RENAME_FAIL)),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let name = ChaosFs::name_of(path, false);
        match self.draw("remove", &name)? {
            Decision::Clean => {
                self.inner.remove_file(path)?;
                self.clean("remove", &name);
                Ok(())
            }
            Decision::Fault(_) => Err(self.fail("remove", &name, OP_FAIL)),
        }
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        let name = ChaosFs::name_of(path, true);
        match self.draw("mkdir", &name)? {
            Decision::Clean => {
                self.inner.create_dir_all(path)?;
                self.clean("mkdir", &name);
                Ok(())
            }
            Decision::Fault(_) => Err(self.fail("mkdir", &name, OP_FAIL)),
        }
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        let name = ChaosFs::name_of(path, false);
        match self.draw("syncfile", &name)? {
            Decision::Clean => {
                self.inner.sync_file(path)?;
                self.clean("syncfile", &name);
                Ok(())
            }
            Decision::Fault(_) => Err(self.fail("syncfile", &name, OP_FAIL)),
        }
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        let name = ChaosFs::name_of(path, true);
        match self.draw("syncdir", &name)? {
            Decision::Clean => {
                self.inner.sync_dir(path)?;
                self.clean("syncdir", &name);
                Ok(())
            }
            Decision::Fault(_) => Err(self.fail("syncdir", &name, OP_FAIL)),
        }
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let name = ChaosFs::name_of(path, true);
        match self.draw("readdir", &name)? {
            Decision::Clean => {
                let entries = self.inner.read_dir(path)?;
                self.clean("readdir", &name);
                Ok(entries)
            }
            Decision::Fault(_) => Err(self.fail("readdir", &name, OP_FAIL)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mpr-exp-vfs-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn commit_durable_orders_the_durability_protocol() {
        let dir = temp_dir("commit");
        let chaos = ChaosFs::new(ChaosConfig::quiet(1));
        let path = dir.join("entry.json");
        commit_durable(&chaos, &path, b"payload").expect("commit");
        assert_eq!(std::fs::read(&path).expect("read back"), b"payload");
        assert!(!path.with_file_name("entry.json.tmp").exists());
        // The exact protocol, in order: mkdir, tmp write, tmp fsync,
        // rename, parent fsync.
        assert_eq!(
            chaos.trace(),
            vec![
                "mkdir <dir> -> ok",
                "write entry.json.tmp -> ok",
                "syncfile entry.json.tmp -> ok",
                "rename entry.json -> ok",
                "syncdir <dir> -> ok",
            ]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_point_is_fail_stop() {
        let dir = temp_dir("crash");
        let chaos = ChaosFs::new(ChaosConfig {
            seed: 2,
            rate: 0.0,
            crash_at: Some(2),
        });
        let path = dir.join("entry.json");
        // Ops 0 and 1 (mkdir, write) execute; op 2 (syncfile) and every
        // later op fail as if the process had died.
        let err = commit_durable(&chaos, &path, b"payload").expect_err("must crash");
        assert!(err.to_string().contains("simulated crash"), "{err}");
        assert!(chaos.stats().crashed);
        assert!(!path.exists(), "rename never ran");
        assert!(path.with_file_name("entry.json.tmp").exists(), "torn tmp");
        // Once crashed, even a fresh operation fails.
        assert!(chaos.read(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn schedule_is_a_pure_function_of_identity() {
        // Two independent chaos layers over different directories draw
        // identical fault sequences for the same operation identities.
        let cfg = ChaosConfig {
            seed: 0xC4A0_55ED,
            rate: 0.5,
            crash_at: None,
        };
        let run = |tag: &str| {
            let dir = temp_dir(tag);
            std::fs::create_dir_all(&dir).expect("mkdir");
            let chaos = ChaosFs::new(cfg);
            for i in 0..8 {
                let path = dir.join(format!("{i:02}.json"));
                let _ = chaos.write(&path, b"abcdefgh");
                let _ = chaos.read(&path);
            }
            let trace = chaos.trace();
            let _ = std::fs::remove_dir_all(&dir);
            trace
        };
        let a = run("sched-a");
        let b = run("sched-b");
        assert_eq!(a, b);
        // At 50% the schedule must actually inject something.
        assert!(a.iter().any(|l| !l.ends_with("ok")), "{a:?}");
    }

    #[test]
    fn repeated_ops_on_one_name_draw_distinct_faults() {
        let dir = temp_dir("seq");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let chaos = ChaosFs::new(ChaosConfig {
            seed: 77,
            rate: 0.5,
            crash_at: None,
        });
        let path = dir.join("same.json");
        let outcomes: Vec<bool> = (0..16).map(|_| chaos.write(&path, b"x").is_ok()).collect();
        // The per-name occurrence index advances the schedule: at 50%
        // the same file must see both outcomes across 16 writes.
        assert!(outcomes.iter().any(|&ok| ok), "{outcomes:?}");
        assert!(outcomes.iter().any(|&ok| !ok), "{outcomes:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flips_corrupt_exactly_one_bit() {
        let dir = temp_dir("flip");
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("a.json"), vec![0u8; 64]).expect("seed file");
        // Scan seeds until the schedule flips a read of `a.json`.
        for seed in 0..256u64 {
            let chaos = ChaosFs::new(ChaosConfig {
                seed,
                rate: 0.9,
                crash_at: None,
            });
            if let Ok(bytes) = chaos.read(&dir.join("a.json")) {
                let flipped: u32 = bytes.iter().map(|b| b.count_ones()).sum();
                if flipped == 1 {
                    let _ = std::fs::remove_dir_all(&dir);
                    return;
                }
            }
        }
        // mpr-allow: panic-hygiene -- test must find at least one bit-flip seed
        panic!("no seed in 0..256 produced a bit flip");
    }

    #[test]
    fn stats_and_recorder_counters_account_for_every_op() {
        let dir = temp_dir("stats");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let chaos = ChaosFs::new(ChaosConfig {
            seed: 3,
            rate: 0.5,
            crash_at: None,
        });
        for i in 0..12 {
            let _ = chaos.write(&dir.join(format!("{i}.json")), b"payload");
        }
        let stats = chaos.stats();
        assert_eq!(stats.ops, 12);
        assert_eq!(stats.survived + stats.injected_total(), 12);
        assert!(stats.injected_total() > 0, "{stats:?}");
        let rec = mpr_obs::JsonlRecorder::new();
        chaos.record_to(&rec);
        let log = rec.to_jsonl();
        assert!(log.contains("chaos.ops"), "{log}");
        assert!(log.contains("chaos.injected"), "{log}");
        assert!(log.contains("chaos.survived"), "{log}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn real_fs_read_dir_is_sorted() {
        let dir = temp_dir("sorted");
        std::fs::create_dir_all(&dir).expect("mkdir");
        for name in ["c.json", "a.json", "b.json"] {
            std::fs::write(dir.join(name), b"x").expect("write");
        }
        let names: Vec<String> = RealFs
            .read_dir(&dir)
            .expect("read_dir")
            .iter()
            .filter_map(|p| p.file_name().and_then(|n| n.to_str()).map(str::to_string))
            .collect();
        assert_eq!(names, vec!["a.json", "b.json", "c.json"]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
