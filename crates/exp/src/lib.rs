//! Cell-keyed experiment engine for the mixed-precision reliability
//! study.
//!
//! The paper's evaluation is a grid of (device × workload × precision)
//! campaigns that many figures project in different ways. This crate
//! names each point of that grid with a [`CellKey`], collects requests
//! into an [`ExperimentPlan`], and lets an [`Engine`] execute the
//! *unique* cells exactly once — in parallel across cells, memoized in
//! a [`ResultStore`], and optionally persisted to an on-disk JSON
//! cache so repeated reports are incremental. Figures become pure
//! views over plan results.
//!
//! Determinism contract: a cell's RNG stream is a pure function of the
//! study base seed and the cell key (via splitmix64 mixing), and the
//! campaign layers are thread-count invariant, so results are
//! bit-identical across thread counts, request orders, and cache
//! temperatures.
//!
//! Fault tolerance: each cell body runs isolated under `catch_unwind`
//! with an optional watchdog deadline and a deterministic retry budget
//! ([`Engine::try_run`] returns per-cell `Result`s; a panicking or hung
//! cell becomes a structured [`CellFailure`] while every healthy cell
//! completes). Disk-backed stores additionally keep a [`Manifest`]
//! ledger so interrupted campaigns resume with exactly the
//! failed/missing subset.
//!
//! Crash consistency: every byte the engine persists routes through
//! the [`Vfs`] trait. Cache and manifest commits use the durable
//! tmp-fsync-rename-fsync protocol ([`commit_durable`]), stores sweep
//! stale `*.tmp` residue on open, and [`ChaosFs`] can subject the whole
//! persistence layer to a deterministic seeded fault schedule — torn
//! writes, ENOSPC, bit-flipped reads, simulated mid-commit crashes —
//! to prove a resumed run converges to byte-identical artifacts.
//!
//! ```rust
//! use mpr_exp::{
//!     CellKey, CellKind, ClassifierId, DeviceId, Engine, ExperimentPlan, SamplingPlan, WorkloadId,
//! };
//! use mpr_softfloat::Precision;
//!
//! let engine = Engine::new(2019);
//! let mut plan = ExperimentPlan::new();
//! for p in [Precision::Single, Precision::Half] {
//!     plan.push(CellKey {
//!         device: DeviceId::TitanV,
//!         workload: WorkloadId::Gemm { dim: 8 },
//!         precision: p,
//!         kind: CellKind::Beam {
//!             hours: 10.0,
//!             target_candidates: 60,
//!             classifier: ClassifierId::None,
//!             sampling: SamplingPlan::Fixed,
//!         },
//!     });
//! }
//! let results = engine.run(&plan);
//! assert_eq!(results.len(), 2);
//! assert_eq!(engine.store().executed(), 2);
//! ```

#![deny(missing_docs)]

mod cache;
mod cell;
mod engine;
mod failure;
mod manifest;
mod store;
mod vfs;

pub use cell::{CellKey, CellKind, ClassifierId, DeviceId, WorkloadId, KEY_VERSION};
pub use engine::{Engine, ExperimentPlan};
pub use failure::{failure_table, CellFailure, FailureKind};
pub use manifest::{manifest_path, CellState, CellStatus, Manifest, MANIFEST_FILE};
/// Re-exported from [`mpr_metrics::sampling`] so plan builders can pick a
/// strike-sampling strategy without depending on the metrics crate directly.
pub use mpr_metrics::{SamplingConfig, SamplingPlan};
/// Re-exported from [`mpr_obs::seed`], the workspace's shared
/// seed-derivation scheme (kept here for backwards compatibility).
pub use mpr_obs::{fnv1a64, mix_seed, splitmix64, SplitMix};
pub use store::{AccumulateOutcome, CellResult, LookupSource, ResultStore};
pub use vfs::{commit_durable, ChaosConfig, ChaosFs, ChaosStats, RealFs, Vfs};
