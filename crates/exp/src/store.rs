//! The result store: in-memory memoization plus an optional on-disk
//! JSON cache, shared by every figure of a study.

use crate::cache;
use crate::cell::CellKey;
use crate::vfs::{RealFs, Vfs};
use mpr_beam::CampaignResult;
use mpr_fault::InjectionReport;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The outcome of an FPGA error-accumulation cell: `trials` runs with
/// `faults` stuck-at configuration upsets piled up in each.
#[derive(Debug, Clone, PartialEq)]
pub struct AccumulateOutcome {
    /// Fraction of trials whose output was corrupted.
    pub sdc_probability: f64,
    /// Mean fraction of output elements corrupted, among SDC trials.
    pub corruption_extent: f64,
    /// Number of trials behind the estimate.
    pub trials: u32,
}

/// The result of one executed (or cached) experiment cell.
#[derive(Debug, Clone)]
pub enum CellResult {
    /// A beam campaign outcome.
    Beam(CampaignResult),
    /// A fault-injection campaign outcome.
    Inject(InjectionReport),
    /// An error-accumulation sweep point.
    Accumulate(AccumulateOutcome),
}

impl CellResult {
    /// The beam campaign result inside.
    ///
    /// # Panics
    ///
    /// Panics if the cell was not a beam cell — a plan-construction bug.
    pub fn beam(&self) -> &CampaignResult {
        match self {
            CellResult::Beam(r) => r,
            other => panic!("expected a beam result, got {other:?}"),
        }
    }

    /// The injection report inside.
    ///
    /// # Panics
    ///
    /// Panics if the cell was not an injection cell.
    pub fn inject(&self) -> &InjectionReport {
        match self {
            CellResult::Inject(r) => r,
            other => panic!("expected an injection result, got {other:?}"),
        }
    }

    /// The accumulation outcome inside.
    ///
    /// # Panics
    ///
    /// Panics if the cell was not an accumulation cell.
    pub fn accumulate(&self) -> &AccumulateOutcome {
        match self {
            CellResult::Accumulate(r) => r,
            other => panic!("expected an accumulation result, got {other:?}"),
        }
    }
}

/// Where a [`ResultStore::lookup_traced`] answer came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupSource {
    /// Served by the in-memory memo table.
    Memory,
    /// Served by the on-disk cache (and promoted to memory).
    Disk,
    /// Not cached anywhere; the cell must execute.
    Miss,
    /// A disk entry existed but was corrupt; it was quarantined to
    /// `<name>.corrupt` and the cell must execute.
    CorruptQuarantined,
}

/// Memoized results and golden outputs for one study.
///
/// The store is keyed by the *store key* — the base seed plus the
/// cell's canonical encoding — so a single store can safely serve
/// studies at different seeds (and an on-disk cache directory can be
/// shared across runs and seeds). Golden outputs are memoized
/// separately per (workload × precision): a golden run is seed- and
/// device-independent, so every cell sharing that pair reuses one run.
pub struct ResultStore {
    results: Mutex<BTreeMap<String, CellResult>>,
    goldens: Mutex<BTreeMap<String, Arc<Vec<f64>>>>,
    cache_dir: Option<PathBuf>,
    vfs: Arc<dyn Vfs>,
    executed: AtomicU64,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    quarantined: AtomicU64,
    tmp_swept: AtomicU64,
}

impl std::fmt::Debug for ResultStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultStore")
            .field("cache_dir", &self.cache_dir)
            .field("executed", &self.executed())
            .field("mem_hits", &self.mem_hits())
            .field("disk_hits", &self.disk_hits())
            .field("quarantined", &self.quarantined())
            .finish()
    }
}

impl Default for ResultStore {
    fn default() -> Self {
        ResultStore::in_memory()
    }
}

impl ResultStore {
    /// A purely in-memory store.
    pub fn in_memory() -> ResultStore {
        ResultStore {
            results: Mutex::new(BTreeMap::new()),
            goldens: Mutex::new(BTreeMap::new()),
            cache_dir: None,
            vfs: Arc::new(RealFs),
            executed: AtomicU64::new(0),
            mem_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            tmp_swept: AtomicU64::new(0),
        }
    }

    /// A store backed by an on-disk JSON cache directory (created on
    /// first write). Disk entries survive the process, so repeated
    /// reports are incremental.
    pub fn with_cache_dir(dir: impl Into<PathBuf>) -> ResultStore {
        ResultStore::with_cache_dir_on(dir, Arc::new(RealFs))
    }

    /// [`ResultStore::with_cache_dir`] with an explicit filesystem —
    /// the seam where the chaos layer plugs in. Opening the store
    /// sweeps stale `*.tmp` files a crashed writer left behind (the
    /// durable-commit protocol guarantees they are the *only* possible
    /// residue); the count is retrievable via
    /// [`ResultStore::take_tmp_swept`].
    pub fn with_cache_dir_on(dir: impl Into<PathBuf>, vfs: Arc<dyn Vfs>) -> ResultStore {
        let dir = dir.into();
        let mut swept = 0u64;
        if let Ok(entries) = vfs.read_dir(&dir) {
            for path in entries {
                let is_tmp = path.extension().is_some_and(|e| e == "tmp");
                if is_tmp && vfs.remove_file(&path).is_ok() {
                    swept += 1;
                }
            }
        }
        ResultStore {
            cache_dir: Some(dir),
            vfs,
            tmp_swept: AtomicU64::new(swept),
            ..ResultStore::in_memory()
        }
    }

    /// The filesystem this store's disk traffic routes through.
    pub fn vfs(&self) -> Arc<dyn Vfs> {
        Arc::clone(&self.vfs)
    }

    /// The disk cache directory, if any.
    pub fn cache_dir(&self) -> Option<&Path> {
        self.cache_dir.as_deref()
    }

    /// The store key for a cell under a base seed.
    pub fn store_key(base_seed: u64, key: &CellKey) -> String {
        format!("seed={base_seed:016x};{}", key.canonical())
    }

    /// Looks a cell up, consulting memory first and then the disk
    /// cache. Disk entries embed their full store key and are verified
    /// against it on load; a mismatch (hash collision or stale format)
    /// is a miss, never a wrong answer.
    pub fn lookup(&self, store_key: &str) -> Option<CellResult> {
        self.lookup_traced(store_key).0
    }

    /// [`ResultStore::lookup`], additionally reporting where the answer
    /// came from so callers can record cache telemetry.
    pub fn lookup_traced(&self, store_key: &str) -> (Option<CellResult>, LookupSource) {
        // mpr-allow: panic-hygiene -- a poisoned store lock means a worker already panicked; propagating is the only sound option
        if let Some(hit) = self.results.lock().expect("store lock").get(store_key) {
            self.mem_hits.fetch_add(1, Ordering::Relaxed);
            return (Some(hit.clone()), LookupSource::Memory);
        }
        let Some(dir) = self.cache_dir.as_ref() else {
            return (None, LookupSource::Miss);
        };
        let path = cache::entry_path(dir, store_key);
        let loaded = match cache::load(self.vfs.as_ref(), &path, store_key) {
            cache::LoadOutcome::Hit(result) => result,
            cache::LoadOutcome::Miss => return (None, LookupSource::Miss),
            cache::LoadOutcome::Corrupt => {
                // Quarantine in place (rename is atomic) so the damaged
                // bytes stay inspectable but are never re-parsed, then
                // fall through to recomputation.
                let quarantine = path.with_extension("corrupt");
                if self.vfs.rename(&path, &quarantine).is_ok() {
                    self.quarantined.fetch_add(1, Ordering::Relaxed);
                    eprintln!(
                        "mpr-exp: quarantined corrupt cache entry {} -> {}",
                        path.display(),
                        quarantine.display()
                    );
                }
                return (None, LookupSource::CorruptQuarantined);
            }
        };
        self.disk_hits.fetch_add(1, Ordering::Relaxed);
        // mpr-allow: panic-hygiene -- a poisoned store lock means a worker already panicked; propagating is the only sound option
        let mut results = self.results.lock().expect("store lock");
        results.insert(store_key.to_string(), loaded.clone());
        (Some(loaded), LookupSource::Disk)
    }

    /// Records a freshly executed result, writing it through to the
    /// disk cache when one is configured. The result is memoized in
    /// memory unconditionally; the returned error reports a failed disk
    /// write so callers can count the lost warm-start bytes instead of
    /// silently losing them.
    pub fn insert(&self, store_key: &str, result: CellResult) -> std::io::Result<()> {
        self.executed.fetch_add(1, Ordering::Relaxed);
        let disk = match &self.cache_dir {
            Some(dir) => cache::save(self.vfs.as_ref(), dir, store_key, &result),
            None => Ok(()),
        };
        // mpr-allow: panic-hygiene -- a poisoned store lock means a worker already panicked; propagating is the only sound option
        let mut results = self.results.lock().expect("store lock");
        results.insert(store_key.to_string(), result);
        disk
    }

    /// A point-in-time snapshot of every memoized result, in sorted
    /// store-key order (deterministic across thread schedules and
    /// cache temperatures). Reports use this to enumerate what a study
    /// actually executed — e.g. the per-cell convergence table —
    /// without re-threading results through every figure.
    pub fn snapshot(&self) -> Vec<(String, CellResult)> {
        // mpr-allow: panic-hygiene -- a poisoned store lock means a worker already panicked; propagating is the only sound option
        let results = self.results.lock().expect("store lock");
        results
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// The golden output for a (workload × precision) pair, computing
    /// it with `compute` on first request and reusing it afterwards.
    pub fn golden(&self, golden_key: &str, compute: impl FnOnce() -> Vec<f64>) -> Arc<Vec<f64>> {
        {
            // mpr-allow: panic-hygiene -- a poisoned store lock means a worker already panicked; propagating is the only sound option
            let map = self.goldens.lock().expect("golden lock");
            if let Some(hit) = map.get(golden_key) {
                return Arc::clone(hit);
            }
        }
        // Compute outside the lock; a racing duplicate computes the
        // same deterministic value and the first insert wins.
        let value = Arc::new(compute());
        // mpr-allow: panic-hygiene -- a poisoned store lock means a worker already panicked; propagating is the only sound option
        let mut map = self.goldens.lock().expect("golden lock");
        Arc::clone(map.entry(golden_key.to_string()).or_insert(value))
    }

    /// How many cells this store actually executed (cache misses).
    pub fn executed(&self) -> u64 {
        self.executed.load(Ordering::Relaxed)
    }

    /// How many lookups were served from memory.
    pub fn mem_hits(&self) -> u64 {
        self.mem_hits.load(Ordering::Relaxed)
    }

    /// How many lookups were served from the disk cache.
    pub fn disk_hits(&self) -> u64 {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// How many corrupt disk entries this store quarantined.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Takes (and resets) the count of stale `*.tmp` files swept when
    /// the store opened, so the engine reports each sweep exactly once.
    pub fn take_tmp_swept(&self) -> u64 {
        self.tmp_swept.swap(0, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_is_computed_once() {
        let store = ResultStore::in_memory();
        let mut calls = 0;
        let a = store.golden("gemm:12@single", || {
            calls += 1;
            vec![1.0, 2.0]
        });
        let b = store.golden("gemm:12@single", || {
            // mpr-allow: panic-hygiene -- test asserts the closure is never reached
            panic!("golden recomputed")
        });
        assert_eq!(calls, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn memoization_counts_hits() {
        let store = ResultStore::in_memory();
        let key = "seed=0000000000000001;v1;dev=x;wl=y;p=single;k=acc:k=1,t=1";
        assert!(store.lookup(key).is_none());
        store
            .insert(
                key,
                CellResult::Accumulate(AccumulateOutcome {
                    sdc_probability: 0.5,
                    corruption_extent: 0.25,
                    trials: 4,
                }),
            )
            .expect("in-memory insert never fails");
        let hit = store.lookup(key);
        assert!(hit.is_some());
        assert_eq!(store.executed(), 1);
        assert_eq!(store.mem_hits(), 1);
        assert_eq!(store.disk_hits(), 0);
    }

    #[test]
    fn corrupt_disk_entries_are_quarantined_once() {
        let dir = std::env::temp_dir().join("mpr-exp-store-test-quarantine");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let store = ResultStore::with_cache_dir(&dir);
        let key = "seed=0000000000000003;v2;dev=x;wl=y;p=half;k=acc:k=1,t=1";
        let path = cache::entry_path(&dir, key);
        std::fs::write(&path, "{\"format\": \"mpr-exp-cache-v1\", trunc").expect("write");

        let (hit, source) = store.lookup_traced(key);
        assert!(hit.is_none());
        assert_eq!(source, LookupSource::CorruptQuarantined);
        assert_eq!(store.quarantined(), 1);
        assert!(!path.exists(), "damaged file moved aside");
        assert!(path.with_extension("corrupt").exists());

        // The quarantined bytes are never re-parsed: the next lookup is
        // an ordinary miss.
        let (again, source) = store.lookup_traced(key);
        assert!(again.is_none());
        assert_eq!(source, LookupSource::Miss);
        assert_eq!(store.quarantined(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn opening_a_store_sweeps_stale_tmp_files() {
        let dir = std::env::temp_dir().join("mpr-exp-store-test-sweep");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let key = "seed=000000000000000a;v2;dev=x;wl=y;p=half;k=acc:k=1,t=1";
        {
            let seeder = ResultStore::with_cache_dir(&dir);
            seeder
                .insert(
                    key,
                    CellResult::Accumulate(AccumulateOutcome {
                        sdc_probability: 0.5,
                        corruption_extent: 0.5,
                        trials: 1,
                    }),
                )
                .expect("insert");
        }
        // Residue of two crashed commits alongside the committed entry.
        std::fs::write(dir.join("aaaa.json.tmp"), "torn").expect("write");
        std::fs::write(dir.join("bbbb.json.tmp"), "torn").expect("write");
        let store = ResultStore::with_cache_dir(&dir);
        assert_eq!(store.take_tmp_swept(), 2);
        assert_eq!(store.take_tmp_swept(), 0, "reported exactly once");
        assert!(!dir.join("aaaa.json.tmp").exists());
        assert!(!dir.join("bbbb.json.tmp").exists());
        assert!(store.lookup(key).is_some(), "committed entry intact");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn insert_reports_disk_write_failures() {
        // Point the cache at a path occupied by a regular file: the
        // disk write fails, the memoization still works.
        let blocker = std::env::temp_dir().join("mpr-exp-store-test-blocked");
        std::fs::write(&blocker, "not a directory").expect("write blocker");
        let store = ResultStore::with_cache_dir(&blocker);
        let key = "seed=0000000000000004;v2;dev=x;wl=y;p=half;k=acc:k=1,t=1";
        let result = CellResult::Accumulate(AccumulateOutcome {
            sdc_probability: 1.0,
            corruption_extent: 1.0,
            trials: 1,
        });
        assert!(store.insert(key, result).is_err());
        assert!(store.lookup(key).is_some(), "memoization survives");
        let _ = std::fs::remove_file(&blocker);
    }
}
