//! Full-scale profiles for the neural-network workloads.

use mpr_arch::{OpMix, WorkloadKind, WorkloadProfile};

/// MNIST on the FPGA (paper Section 4): a small LeNet-class network
/// synthesized as a circuit; bigger than the MxM array (Figure 2) but
/// naturally fault masking.
pub fn mnist_fpga() -> WorkloadProfile {
    WorkloadProfile {
        name: "MNIST".to_string(),
        flops: 8.0e5,
        mix: OpMix::new(0.08, 0.10, 0.80, 0.0, 0.02),
        value_traffic: 2.0e4,
        threads: 1.0,
        regs_per_thread: 32.0,
        ilp: 24.0,
        working_set_values: 6.0e4,
        memory_boundedness: 0.2,
        control_density: 0.2, // bare-metal pipeline
        kind: WorkloadKind::Classifier,
    }
}

/// YOLOv3 at GPU scale (paper Section 6): convolution/FMA dominated,
/// large activation working set, heavy framework control flow — "object
/// detection CNNs have a much higher probability to experience DUEs".
pub fn yolo_gpu() -> WorkloadProfile {
    WorkloadProfile {
        name: "YOLOv3".to_string(),
        flops: 3.3e10, // ~33 GFLOP per 416x416 YOLOv3 frame
        mix: OpMix::new(0.05, 0.15, 0.80, 0.0, 0.0),
        value_traffic: 2.5e8,
        threads: 2.0e5,
        regs_per_thread: 64.0,
        ilp: 6.0,
        working_set_values: 1.0e6, // in-flight activations per layer pair
        memory_boundedness: 0.4,
        control_density: 2.5, // layer dispatch, NMS, framework glue
        kind: WorkloadKind::Detector,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpr_arch::{Device, Fpga, VoltaGpu};
    use mpr_softfloat::Precision;

    #[test]
    fn mnist_binds_to_fpga_calibration() {
        let fpga = Fpga::zynq7000();
        assert_eq!(fpga.exec_time(&mnist_fpga(), Precision::Double), 0.011);
        // MNIST occupies more area than MxM at every precision.
        let e = fpga.exposure(&mnist_fpga(), Precision::Half).compute;
        assert!(e > 0.0);
    }

    #[test]
    fn yolo_half_is_slower_on_the_gpu() {
        // Table 3's inversion: the half-precision YOLOv3 framework path
        // is slower than single.
        let gpu = VoltaGpu::titan_v();
        let s = gpu.exec_time(&yolo_gpu(), Precision::Single);
        let h = gpu.exec_time(&yolo_gpu(), Precision::Half);
        assert!(h > s, "half {h} must exceed single {s}");
        assert_eq!(h, 0.283);
    }

    #[test]
    fn yolo_half_fit_exposure_is_significantly_lowest() {
        // Figure 10c: half YOLOv3 has a significantly lower FIT.
        let gpu = VoltaGpu::titan_v();
        let d = gpu.exposure(&yolo_gpu(), Precision::Double).compute;
        let s = gpu.exposure(&yolo_gpu(), Precision::Single).compute;
        let h = gpu.exposure(&yolo_gpu(), Precision::Half).compute;
        assert!(h < 0.85 * s, "h={h:.3e} s={s:.3e}");
        assert!(h < 0.75 * d, "h={h:.3e} d={d:.3e}");
    }

    #[test]
    fn yolo_due_exposure_dwarfs_numeric_codes() {
        let gpu = VoltaGpu::titan_v();
        let yolo = gpu.exposure(&yolo_gpu(), Precision::Single).due;
        let micro = gpu
            .exposure(&mpr_arch::WorkloadProfile::micro_fma(), Precision::Single)
            .due;
        assert!(yolo > 10.0 * micro);
    }
}
