//! A minimal CHW tensor.

use mpr_softfloat::FloatExt;

/// A dense 3-D tensor in channel-height-width layout, generic over the
/// arithmetic precision.
///
/// # Example
///
/// ```rust
/// use mpr_nn::Tensor;
///
/// let mut t: Tensor<f32> = Tensor::zeros(2, 3, 3);
/// t.set(1, 2, 2, 5.0);
/// assert_eq!(t.get(1, 2, 2), 5.0);
/// assert_eq!(t.shape(), (2, 3, 3));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor<F> {
    channels: usize,
    height: usize,
    width: usize,
    data: Vec<F>,
}

impl<F: FloatExt> Tensor<F> {
    /// A zero-filled tensor.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn zeros(channels: usize, height: usize, width: usize) -> Tensor<F> {
        assert!(
            channels > 0 && height > 0 && width > 0,
            "tensor dimensions must be positive"
        );
        Tensor {
            channels,
            height,
            width,
            data: vec![F::zero(); channels * height * width],
        }
    }

    /// Builds a tensor element-wise from `(c, y, x)`.
    pub fn from_fn(
        channels: usize,
        height: usize,
        width: usize,
        mut f: impl FnMut(usize, usize, usize) -> F,
    ) -> Tensor<F> {
        let mut t = Tensor::zeros(channels, height, width);
        for c in 0..channels {
            for y in 0..height {
                for x in 0..width {
                    t.set(c, y, x, f(c, y, x));
                }
            }
        }
        t
    }

    /// `(channels, height, width)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.channels, self.height, self.width)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the tensor holds no elements (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    fn index(&self, c: usize, y: usize, x: usize) -> usize {
        debug_assert!(c < self.channels && y < self.height && x < self.width);
        (c * self.height + y) * self.width + x
    }

    /// Reads one element.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) on out-of-range indices.
    #[inline]
    pub fn get(&self, c: usize, y: usize, x: usize) -> F {
        self.data[self.index(c, y, x)]
    }

    /// Writes one element.
    #[inline]
    pub fn set(&mut self, c: usize, y: usize, x: usize, v: F) {
        let i = self.index(c, y, x);
        self.data[i] = v;
    }

    /// Flat view of the data (CHW order).
    pub fn as_slice(&self) -> &[F] {
        &self.data
    }

    /// The contents widened to `f64` (exact), CHW order.
    pub fn to_f64_vec(&self) -> Vec<f64> {
        self.data.iter().map(|v| v.to_f64()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpr_softfloat::Half;

    #[test]
    fn from_fn_and_indexing() {
        let t: Tensor<f64> = Tensor::from_fn(2, 3, 4, |c, y, x| (c * 100 + y * 10 + x) as f64);
        assert_eq!(t.get(0, 0, 0), 0.0);
        assert_eq!(t.get(1, 2, 3), 123.0);
        assert_eq!(t.len(), 24);
        assert!(!t.is_empty());
    }

    #[test]
    fn layout_is_chw() {
        let t: Tensor<f32> = Tensor::from_fn(2, 2, 2, |c, y, x| (c * 4 + y * 2 + x) as f32);
        let flat: Vec<f32> = t.as_slice().to_vec();
        assert_eq!(flat, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn works_with_half() {
        let t: Tensor<Half> = Tensor::from_fn(1, 2, 2, |_, y, x| Half::from_f64((y + x) as f64));
        assert_eq!(t.to_f64_vec(), vec![0.0, 1.0, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dimension_rejected() {
        let _: Tensor<f64> = Tensor::zeros(0, 1, 1);
    }
}
