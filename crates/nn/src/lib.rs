//! # mpr-nn
//!
//! The neural-network workloads of the study, written once over
//! [`mpr_softfloat::FloatExt`] and executed at double, single, and half
//! precision with every multiply-accumulate exposed as a fault site:
//!
//! * [`Mnist`] — a LeNet-style convolutional classifier (the circuit the
//!   paper synthesizes on the FPGA). Criticality: an SDC is **critical**
//!   when the predicted class changes, **tolerable** when only the
//!   scores move (paper Section 4.1).
//! * [`TinyYolo`] — a compact YOLO-style single-shot detector standing in
//!   for YOLOv3 (paper Section 3.1). Criticality: **tolerable**, a
//!   **detection change** (boxes appear/move/vanish), or a
//!   **classification change** (paper Figure 11c).
//!
//! Mirroring the paper's methodology, the networks are *not retrained
//! per precision*: one set of weights is generated deterministically and
//! cast into each precision ("we keep the same weights of the single
//! precision version and convert them" — Section 3.1). The datasets are
//! synthetic, deterministic stand-ins (documented in DESIGN.md): the
//! criticality analysis needs a classifier and a detector, not
//! provenance-correct pixels.
//!
//! # Example
//!
//! ```rust
//! use mpr_fault::Workload;
//! use mpr_nn::{classify_logits, ClassificationImpact, Mnist};
//! use mpr_softfloat::Precision;
//!
//! let mnist = Mnist::new();
//! let logits = mnist.run_golden(Precision::Half);
//! assert_eq!(logits.len(), 10);
//! // Un-corrupted output classifies identically to itself.
//! assert_eq!(
//!     classify_logits(&logits, &logits),
//!     ClassificationImpact::Tolerable
//! );
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod criticality;
pub mod layers;
mod mnist;
pub mod profiles;
mod synth;
mod tensor;
mod yolo;

/// Dispatches a generic `run<F>` method on a runtime [`mpr_softfloat::Precision`].
macro_rules! dispatch_precision {
    ($self:ident, $precision:ident, $hook:ident) => {
        match $precision {
            mpr_softfloat::Precision::Double => $self.run::<f64>($hook),
            mpr_softfloat::Precision::Single => $self.run::<f32>($hook),
            mpr_softfloat::Precision::Half => $self.run::<mpr_softfloat::Half>($hook),
        }
    };
}
pub(crate) use dispatch_precision;

pub use criticality::{
    classify_detections, classify_logits, ClassificationImpact, Detection, DetectionImpact,
};
pub use mnist::Mnist;
pub use tensor::Tensor;
pub use yolo::TinyYolo;
