//! Deterministic synthetic weights and datasets.
//!
//! The paper runs MNIST digits and the Caltech pedestrian dataset; those
//! pixels are not redistributable inputs of this reproduction and their
//! provenance does not affect the criticality mechanics. These
//! generators produce deterministic stand-ins: structured "digit"
//! patterns and "scene" images with class-typical textures, plus network
//! weights drawn from a seeded generator and *shared across precisions*
//! (the paper casts one set of single-precision weights; retraining per
//! precision would confound the comparison — Section 3.1).
//!
//! mpr-allow-file: precision-leak -- generators run in the f64 master domain by design; every value crosses into F exactly once at a from_f64 boundary so all precisions see the same inputs

use crate::Tensor;
use mpr_softfloat::FloatExt;

/// SplitMix64, the same deterministic generator the kernels use.
#[inline]
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic value in `[lo, hi)` on a 2^-20 grid (exact in single
/// and double; rounds once into half).
pub(crate) fn gen_value(seed: u64, index: u64, lo: f64, hi: f64) -> f64 {
    let bits = splitmix64(seed.wrapping_mul(0x5851_F42D_4C95_7F2D) ^ index);
    let unit = (bits >> 44) as f64 / (1u64 << 20) as f64;
    lo + unit * (hi - lo)
}

/// Weight vector scaled by `1/sqrt(fan_in)`, centered on zero.
pub(crate) fn gen_weights<F: FloatExt>(seed: u64, n: usize, fan_in: usize) -> Vec<F> {
    let scale = 1.0 / (fan_in as f64).sqrt();
    (0..n as u64)
        .map(|i| F::from_f64(gen_value(seed, i, -scale, scale)))
        .collect()
}

/// A synthetic "handwritten digit": a class-dependent stroke pattern on
/// a dark background with deterministic pixel noise, `1 x size x size`.
pub(crate) fn digit_image<F: FloatExt>(class: usize, seed: u64, size: usize) -> Tensor<F> {
    Tensor::from_fn(1, size, size, |_, y, x| {
        // Class-dependent stroke: a band whose orientation and offset
        // depend on the digit class, vaguely like stroke statistics.
        let phase = (class * 7) % 10;
        let stroke = match class % 4 {
            0 => y.abs_diff(size / 2) <= 1,     // horizontal bar
            1 => x.abs_diff(size / 2) <= 1,     // vertical bar
            2 => x.abs_diff(y) <= 1,            // diagonal
            _ => x.abs_diff(size - 1 - y) <= 1, // anti-diagonal
        };
        let ring = y.abs_diff(phase) + x.abs_diff(phase) <= size / 3;
        let base = if stroke || ring { 0.9 } else { 0.05 };
        let noise = gen_value(seed, (y * size + x) as u64, -0.04, 0.04);
        F::from_f64(base + noise)
    })
}

/// A synthetic road "scene": textured background with `n_objects`
/// class-typed rectangles, `3 x size x size`.
pub(crate) fn scene_image<F: FloatExt>(seed: u64, size: usize, n_objects: usize) -> Tensor<F> {
    // Object placements derived from the seed.
    let objects: Vec<(usize, usize, usize, usize)> = (0..n_objects as u64)
        .map(|i| {
            let cx = (splitmix64(seed ^ (i * 3 + 1)) as usize) % (size - 6) + 3;
            let cy = (splitmix64(seed ^ (i * 3 + 2)) as usize) % (size - 6) + 3;
            let class = (splitmix64(seed ^ (i * 3 + 3)) as usize) % 3;
            let half_w = 2 + class;
            (cx, cy, class, half_w)
        })
        .collect();
    Tensor::from_fn(3, size, size, |c, y, x| {
        let mut v = 0.1 + 0.05 * ((x + y + c) % 3) as f64; // background texture
        for &(cx, cy, class, half_w) in &objects {
            if x.abs_diff(cx) <= half_w && y.abs_diff(cy) <= half_w {
                // Class-typical color signature per channel.
                v = if c == class { 0.85 } else { 0.25 };
            }
        }
        let noise = gen_value(seed, ((c * size + y) * size + x) as u64, -0.03, 0.03);
        F::from_f64(v + noise)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_are_deterministic_and_scaled() {
        let a: Vec<f64> = gen_weights(1, 100, 25);
        let b: Vec<f64> = gen_weights(1, 100, 25);
        assert_eq!(a, b);
        assert!(a.iter().all(|w| w.abs() <= 0.2));
        let c: Vec<f64> = gen_weights(2, 100, 25);
        assert_ne!(a, c);
    }

    #[test]
    fn weights_cast_consistently_across_precisions() {
        use mpr_softfloat::Half;
        let d: Vec<f64> = gen_weights(9, 50, 16);
        let h: Vec<Half> = gen_weights(9, 50, 16);
        for (x, y) in d.iter().zip(&h) {
            // Same underlying value, rounded once into half.
            assert_eq!(Half::from_f64(*x).to_bits(), y.to_bits());
        }
    }

    #[test]
    fn digit_images_differ_by_class() {
        let a: Tensor<f64> = digit_image(0, 5, 16);
        let b: Tensor<f64> = digit_image(1, 5, 16);
        assert_ne!(a.to_f64_vec(), b.to_f64_vec());
        assert!(a.to_f64_vec().iter().all(|&v| (-0.1..=1.0).contains(&v)));
    }

    #[test]
    fn scenes_have_objects_and_background() {
        let s: Tensor<f64> = scene_image(3, 16, 2);
        let v = s.to_f64_vec();
        assert!(v.iter().any(|&p| p > 0.7), "object pixels present");
        assert!(v.iter().any(|&p| p < 0.3), "background present");
        assert_eq!(s.shape(), (3, 16, 16));
    }
}
