//! The TinyYolo single-shot detector.

use crate::layers::{conv2d, leaky_relu, maxpool2, sigmoid, ConvWeights};
use crate::synth::{gen_weights, scene_image};
use crate::{Detection, Tensor};
use mpr_fault::hook::FaultHook;
use mpr_fault::Workload;
use mpr_softfloat::{FloatExt, Precision};

/// Grid side of the detection head.
const GRID: usize = 5;
/// Object classes (enough that class posteriors compete closely,
/// like a trained detector's near-confusable categories).
const CLASSES: usize = 6;
/// Output channels per grid cell: objectness + 4 box terms + classes.
const HEAD_CH: usize = 5 + CLASSES;
/// Detection confidence threshold.
const SCORE_THRESHOLD: f64 = 0.55;

/// A compact YOLO-style single-shot detector, the stand-in for the
/// paper's YOLOv3 runs (Section 3.1).
///
/// Backbone: `conv 3->8 (3x3)` + leaky ReLU + pool, `conv 8->16 (3x3)` +
/// leaky ReLU; head: `conv 16->8 (1x1)` onto a 5x5 grid, one box per
/// cell with objectness and class scores squashed by an in-precision
/// sigmoid (GPUs evaluate the exponential in software, so its
/// intermediates are fault sites).
///
/// As a [`Workload`] its output is the raw head tensor; decode with
/// [`TinyYolo::decode`] and score SDCs with
/// [`crate::classify_detections`] into the paper's tolerable /
/// detection-changed / classification-changed categories (Figure 11c).
///
/// # Example
///
/// ```rust
/// use mpr_fault::Workload;
/// use mpr_nn::TinyYolo;
/// use mpr_softfloat::Precision;
///
/// let yolo = TinyYolo::new();
/// let out = yolo.run_golden(Precision::Single);
/// let detections = TinyYolo::decode(&out);
/// assert!(!detections.is_empty(), "the synthetic scene has objects");
/// ```
#[derive(Debug, Clone)]
pub struct TinyYolo {
    seed: u64,
    scene: u64,
}

impl TinyYolo {
    /// The default detector on the default synthetic scene.
    pub fn new() -> TinyYolo {
        // Seed/scene pair chosen so the fault-free detector finds the
        // scene's objects identically at all three precisions, with
        // confident objectness and competitive class posteriors.
        TinyYolo {
            seed: 0x3CBF,
            scene: 5,
        }
    }

    /// Selects a different synthetic scene.
    pub fn with_scene(mut self, scene: u64) -> TinyYolo {
        self.scene = scene;
        self
    }

    /// Overrides the weight seed.
    pub fn with_seed(mut self, seed: u64) -> TinyYolo {
        self.seed = seed;
        self
    }

    fn run<F: FloatExt>(&self, hook: &mut dyn FaultHook) -> Vec<f64> {
        let input: Tensor<F> = scene_image(self.scene, 14, 2);

        let conv1 = ConvWeights::new(
            gen_weights(self.seed ^ 1, 8 * 3 * 9, 27),
            gen_weights(self.seed ^ 2, 8, 27),
            3,
            8,
            3,
        );
        let conv2 = ConvWeights::new(
            gen_weights(self.seed ^ 3, 16 * 8 * 9, 72),
            gen_weights(self.seed ^ 4, 16, 72),
            8,
            16,
            3,
        );
        let mut head_kernels: Vec<F> = gen_weights(self.seed ^ 5, HEAD_CH * 16, 16);
        let mut head_biases: Vec<F> = gen_weights(self.seed ^ 6, HEAD_CH, 16);
        // A trained detector is *confident*: objectness saturates toward
        // 0/1 instead of skimming the threshold. Widen the objectness
        // logit range by scaling its head channel; class channels stay at
        // unit scale so their posteriors compete closely (near-confusable
        // categories), as in a real multi-class detector.
        let obj_gain = F::from_f64(20.0);
        for w in head_kernels.iter_mut().take(16) {
            // mpr-allow: fault-site -- weight synthesis precedes injection; campaigns count sites from the first conv2d
            *w *= obj_gain;
        }
        head_biases[0] *= obj_gain;
        let head = ConvWeights::new(head_kernels, head_biases, 16, HEAD_CH, 1);

        let x = conv2d(&input, &conv1, hook); // 8 x 12 x 12
        let x = leaky_relu(&x, hook);
        let x = maxpool2(&x, hook); // 8 x 6 x 6... pooled from 12
        let x = conv2d(&x, &conv2, hook); // 16 x 4 x 4
        let x = leaky_relu(&x, hook);
        // Upsample-free head: GRID must match the spatial size plus one
        // ring, so run the head per cell over a 5x5 sampling of the 4x4
        // map with clamped coordinates (a cheap anchor grid).
        let mut out = Vec::with_capacity(HEAD_CH * GRID * GRID);
        let (_, fh, fw) = x.shape();
        for gy in 0..GRID {
            for gx in 0..GRID {
                let sy = gy.min(fh - 1);
                let sx = gx.min(fw - 1);
                for ch in 0..HEAD_CH {
                    // 1x1 convolution at the sampled cell.
                    let mut acc: F = head.biases[ch];
                    for i in 0..16 {
                        acc = hook.touch(head.kernels[ch * 16 + i].mul_add(x.get(i, sy, sx), acc));
                    }
                    // Squash objectness, offsets, and class scores; leave
                    // width/height terms raw (channels 3, 4).
                    let v = if ch == 3 || ch == 4 {
                        hook.touch(acc)
                    } else {
                        sigmoid(acc, hook)
                    };
                    out.push(v.to_f64());
                }
            }
        }
        out
    }

    /// Decodes a raw head output (as produced by the workload run) into
    /// thresholded detections with greedy non-maximum suppression.
    ///
    /// # Panics
    ///
    /// Panics if the output length is not `GRID*GRID*HEAD_CH`.
    pub fn decode(output: &[f64]) -> Vec<Detection> {
        assert_eq!(output.len(), GRID * GRID * HEAD_CH, "malformed head output");
        let mut candidates = Vec::new();
        for gy in 0..GRID {
            for gx in 0..GRID {
                let base = (gy * GRID + gx) * HEAD_CH;
                let obj = output[base];
                let detected = obj > SCORE_THRESHOLD;
                if !detected {
                    continue; // NaN objectness never detects
                }
                let cx = gx as f64 + output[base + 1];
                let cy = gy as f64 + output[base + 2];
                // Exponential box decode, clamped to the canvas like
                // YOLO's anchor scaling.
                let w = output[base + 3].exp().clamp(0.2, GRID as f64);
                let h = output[base + 4].exp().clamp(0.2, GRID as f64);
                let (class, &score) = output[base + 5..base + 5 + CLASSES]
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .expect("nonempty class list");
                candidates.push(Detection {
                    class,
                    score: obj * score.max(0.0),
                    bbox: [cx, cy, w, h],
                });
            }
        }
        // Greedy NMS at IoU 0.5.
        candidates.sort_by(|a, b| b.score.total_cmp(&a.score));
        let mut kept: Vec<Detection> = Vec::new();
        for c in candidates {
            if kept.iter().all(|k| k.iou(&c) < 0.5) {
                kept.push(c);
            }
        }
        kept
    }
}

impl Default for TinyYolo {
    fn default() -> Self {
        TinyYolo::new()
    }
}

impl Workload for TinyYolo {
    fn name(&self) -> &str {
        "YOLOv3"
    }

    fn dispatch(&self, precision: Precision, hook: &mut dyn FaultHook) -> Vec<f64> {
        crate::dispatch_precision!(self, precision, hook)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{classify_detections, DetectionImpact};
    use mpr_fault::ValueFault;

    #[test]
    fn head_output_has_the_declared_shape() {
        let yolo = TinyYolo::new();
        for p in Precision::ALL {
            let out = yolo.run_golden(p);
            assert_eq!(out.len(), GRID * GRID * HEAD_CH);
            assert!(out.iter().all(|v| v.is_finite()), "{p}");
        }
    }

    #[test]
    fn golden_detections_stable_across_precisions() {
        let yolo = TinyYolo::new();
        let d = TinyYolo::decode(&yolo.run_golden(Precision::Double));
        let s = TinyYolo::decode(&yolo.run_golden(Precision::Single));
        let h = TinyYolo::decode(&yolo.run_golden(Precision::Half));
        // Precision casting alone must not change what is detected
        // (paper: <2% accuracy change without faults).
        assert_eq!(classify_detections(&d, &s), DetectionImpact::Tolerable);
        assert_eq!(classify_detections(&d, &h), DetectionImpact::Tolerable);
    }

    #[test]
    fn decode_thresholds_objectness() {
        let mut out = vec![0.0; GRID * GRID * HEAD_CH];
        assert!(TinyYolo::decode(&out).is_empty());
        // Turn on one confident cell.
        out[0] = 0.9; // objectness of cell (0,0)
        out[5] = 0.8; // class 0 score
        let dets = TinyYolo::decode(&out);
        assert_eq!(dets.len(), 1);
        assert_eq!(dets[0].class, 0);
    }

    #[test]
    fn nan_objectness_is_never_detected() {
        let mut out = vec![0.0; GRID * GRID * HEAD_CH];
        out[0] = f64::NAN;
        assert!(TinyYolo::decode(&out).is_empty());
    }

    #[test]
    fn nms_suppresses_duplicates() {
        let mut out = vec![0.0; GRID * GRID * HEAD_CH];
        // Two adjacent cells detecting overlapping large boxes.
        for base in [0, HEAD_CH] {
            out[base] = 0.9;
            out[base + 3] = 1.2; // w = e^1.2
            out[base + 4] = 1.2;
            out[base + 5] = 0.7;
        }
        // Their centers differ by ~1 cell but boxes are ~3.3 wide.
        let dets = TinyYolo::decode(&out);
        assert_eq!(dets.len(), 1, "NMS keeps the best of the pair");
    }

    #[test]
    fn faults_can_change_detections() {
        let yolo = TinyYolo::new();
        let golden = TinyYolo::decode(&yolo.run_golden(Precision::Half));
        let sites = yolo.site_count(Precision::Half);
        let mut changed = 0;
        for t in 0..40u64 {
            let site = t * sites / 40;
            let out = yolo.run_with_fault(Precision::Half, site, ValueFault::BitFlip(14));
            if classify_detections(&golden, &TinyYolo::decode(&out)) != DetectionImpact::Tolerable {
                changed += 1;
            }
        }
        assert!(changed > 0, "high exponent-bit flips must matter");
    }

    #[test]
    fn site_count_precision_independent() {
        let yolo = TinyYolo::new();
        let d = yolo.site_count(Precision::Double);
        // Half/single share the count except for exp-polynomial depth in
        // the sigmoids, which is precision dependent.
        assert!(d >= yolo.site_count(Precision::Single));
        assert!(yolo.site_count(Precision::Single) >= yolo.site_count(Precision::Half));
    }
}
