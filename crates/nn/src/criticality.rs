//! SDC criticality classification for classifiers and detectors.

/// Outcome of a classifier SDC (paper Section 4.1, MNIST on the FPGA):
/// a corrupted output is *tolerable* when the predicted class survives
/// and *critical* when the classification changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassificationImpact {
    /// Output corrupted, classification unchanged.
    Tolerable,
    /// The predicted class changed.
    Critical,
}

/// Compares golden and corrupted logit vectors by arg-max.
///
/// # Panics
///
/// Panics if the vectors are empty or differ in length.
///
/// ```rust
/// use mpr_nn::{classify_logits, ClassificationImpact};
/// let golden = [0.1, 0.8, 0.2];
/// assert_eq!(
///     classify_logits(&golden, &[0.15, 0.7, 0.2]),
///     ClassificationImpact::Tolerable
/// );
/// assert_eq!(
///     classify_logits(&golden, &[0.9, 0.8, 0.2]),
///     ClassificationImpact::Critical
/// );
/// ```
pub fn classify_logits(golden: &[f64], observed: &[f64]) -> ClassificationImpact {
    assert!(!golden.is_empty(), "empty logit vector");
    assert_eq!(golden.len(), observed.len(), "logit vectors must match");
    if argmax(golden) == argmax(observed) {
        ClassificationImpact::Tolerable
    } else {
        ClassificationImpact::Critical
    }
}

fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        // NaN never wins, matching a hardware argmax over comparisons.
        if v > xs[best] || xs[best].is_nan() {
            best = i;
        }
    }
    best
}

/// One decoded object detection.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// Predicted class index.
    pub class: usize,
    /// Objectness/confidence score in `[0, 1]`.
    pub score: f64,
    /// Box as `[center_x, center_y, width, height]` in image units.
    pub bbox: [f64; 4],
}

impl Detection {
    /// Intersection-over-union with another box.
    pub fn iou(&self, other: &Detection) -> f64 {
        let half = |b: &[f64; 4]| {
            (
                b[0] - b[2] / 2.0,
                b[1] - b[3] / 2.0,
                b[0] + b[2] / 2.0,
                b[1] + b[3] / 2.0,
            )
        };
        let (ax0, ay0, ax1, ay1) = half(&self.bbox);
        let (bx0, by0, bx1, by1) = half(&other.bbox);
        let iw = (ax1.min(bx1) - ax0.max(bx0)).max(0.0);
        let ih = (ay1.min(by1) - ay0.max(by0)).max(0.0);
        let inter = iw * ih;
        let union = (ax1 - ax0) * (ay1 - ay0) + (bx1 - bx0) * (by1 - by0) - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }
}

/// Outcome of a detector SDC (paper Figure 11c, YOLOv3): scores may move
/// (*tolerable*), boxes may appear/vanish/move (*detection changed*), or
/// a matched object may change class (*classification changed* — the
/// critical case).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectionImpact {
    /// Same objects, same classes, boxes within tolerance.
    Tolerable,
    /// Detections appeared, disappeared, or moved beyond tolerance.
    DetectionChanged,
    /// A matched detection changed class.
    ClassificationChanged,
}

/// Compares golden and corrupted detection sets.
///
/// Matching is greedy by IoU. A golden object whose best-overlapping
/// observation (IoU >= 0.3, i.e. clearly "the same object") carries a
/// different class is a **classification change** — the critical outcome,
/// taking precedence over everything else, whether or not the box also
/// moved ("the class of detected object is wrong", paper Section 6.3).
/// Same-class matches need IoU >= 0.6 to count as position-tolerable;
/// anything else (lost, spurious, or displaced boxes) is a detection
/// change.
pub fn classify_detections(golden: &[Detection], observed: &[Detection]) -> DetectionImpact {
    const IOU_SAME_OBJECT: f64 = 0.3;
    const IOU_TOLERABLE: f64 = 0.6;
    let mut used = vec![false; observed.len()];
    let mut detection_changed = golden.len() != observed.len();
    for g in golden {
        // Best unused observed box by IoU.
        let mut best: Option<(usize, f64)> = None;
        for (i, o) in observed.iter().enumerate() {
            if used[i] {
                continue;
            }
            let iou = g.iou(o);
            if best.is_none_or(|(_, b)| iou > b) {
                best = Some((i, iou));
            }
        }
        match best {
            Some((i, iou)) if iou >= IOU_SAME_OBJECT => {
                used[i] = true;
                if observed[i].class != g.class {
                    return DetectionImpact::ClassificationChanged;
                }
                if iou < IOU_TOLERABLE {
                    detection_changed = true; // same object, moved box
                }
            }
            _ => detection_changed = true,
        }
    }
    if detection_changed || used.iter().any(|u| !u) {
        DetectionImpact::DetectionChanged
    } else {
        DetectionImpact::Tolerable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(class: usize, score: f64, cx: f64, cy: f64, w: f64, h: f64) -> Detection {
        Detection {
            class,
            score,
            bbox: [cx, cy, w, h],
        }
    }

    #[test]
    fn identical_sets_are_tolerable() {
        let g = vec![det(1, 0.9, 5.0, 5.0, 2.0, 2.0)];
        assert_eq!(classify_detections(&g, &g), DetectionImpact::Tolerable);
    }

    #[test]
    fn score_drift_is_tolerable() {
        let g = vec![det(1, 0.9, 5.0, 5.0, 2.0, 2.0)];
        let o = vec![det(1, 0.7, 5.1, 5.0, 2.0, 2.0)];
        assert_eq!(classify_detections(&g, &o), DetectionImpact::Tolerable);
    }

    #[test]
    fn moved_box_changes_detection() {
        let g = vec![det(1, 0.9, 5.0, 5.0, 2.0, 2.0)];
        let o = vec![det(1, 0.9, 9.0, 9.0, 2.0, 2.0)];
        assert_eq!(
            classify_detections(&g, &o),
            DetectionImpact::DetectionChanged
        );
    }

    #[test]
    fn lost_and_spurious_detections() {
        let g = vec![det(0, 0.9, 5.0, 5.0, 2.0, 2.0)];
        assert_eq!(
            classify_detections(&g, &[]),
            DetectionImpact::DetectionChanged
        );
        assert_eq!(
            classify_detections(&[], &g),
            DetectionImpact::DetectionChanged
        );
        assert_eq!(classify_detections(&[], &[]), DetectionImpact::Tolerable);
    }

    #[test]
    fn class_flip_is_critical() {
        let g = vec![det(0, 0.9, 5.0, 5.0, 2.0, 2.0)];
        let o = vec![det(2, 0.9, 5.0, 5.0, 2.0, 2.0)];
        assert_eq!(
            classify_detections(&g, &o),
            DetectionImpact::ClassificationChanged
        );
    }

    #[test]
    fn classification_takes_precedence_over_extra_boxes() {
        let g = vec![det(0, 0.9, 5.0, 5.0, 2.0, 2.0)];
        let o = vec![
            det(1, 0.9, 5.0, 5.0, 2.0, 2.0),
            det(0, 0.5, 10.0, 10.0, 2.0, 2.0),
        ];
        assert_eq!(
            classify_detections(&g, &o),
            DetectionImpact::ClassificationChanged
        );
    }

    #[test]
    fn iou_geometry() {
        let a = det(0, 1.0, 5.0, 5.0, 4.0, 4.0);
        assert!((a.iou(&a) - 1.0).abs() < 1e-12);
        let shifted = det(0, 1.0, 7.0, 5.0, 4.0, 4.0); // half overlap in x
        assert!((shifted.iou(&a) - 8.0 / 24.0).abs() < 1e-12);
        let disjoint = det(0, 1.0, 20.0, 20.0, 2.0, 2.0);
        assert_eq!(a.iou(&disjoint), 0.0);
    }

    #[test]
    fn logits_with_nan_are_critical() {
        let golden = [0.1, 0.8, 0.2];
        let corrupted = [f64::NAN, f64::NAN, 0.2];
        assert_eq!(
            classify_logits(&golden, &corrupted),
            ClassificationImpact::Critical
        );
    }
}
