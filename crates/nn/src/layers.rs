//! Precision-generic network layers with fault-site instrumentation.
//!
//! Every multiply-accumulate, activation, and pooling decision passes
//! through the [`FaultHook`], so a beam strike can land anywhere in the
//! network's dataflow. Max-pooling and ReLU are the *natural masking*
//! mechanisms the paper credits for the CNN's low architectural
//! vulnerability (Section 4.1): a corrupted value that is not the pool
//! maximum, or that is negative going into ReLU, never reaches the
//! output.

use crate::Tensor;
use mpr_fault::hook::FaultHook;
use mpr_softfloat::FloatExt;

/// Weights of one convolution layer: `out_ch` kernels of
/// `in_ch x k x k`, plus biases.
#[derive(Debug, Clone)]
pub struct ConvWeights<F> {
    /// Kernel tensor, flattened `[out_ch][in_ch][k][k]`.
    pub kernels: Vec<F>,
    /// One bias per output channel.
    pub biases: Vec<F>,
    /// Input channels.
    pub in_ch: usize,
    /// Output channels.
    pub out_ch: usize,
    /// Kernel side length.
    pub k: usize,
}

impl<F: FloatExt> ConvWeights<F> {
    /// Validates the dimensions.
    ///
    /// # Panics
    ///
    /// Panics if the buffer sizes do not match the declared shape.
    pub fn new(kernels: Vec<F>, biases: Vec<F>, in_ch: usize, out_ch: usize, k: usize) -> Self {
        assert_eq!(kernels.len(), out_ch * in_ch * k * k, "kernel buffer size");
        assert_eq!(biases.len(), out_ch, "bias buffer size");
        ConvWeights {
            kernels,
            biases,
            in_ch,
            out_ch,
            k,
        }
    }

    #[inline]
    fn kernel(&self, o: usize, i: usize, dy: usize, dx: usize) -> F {
        self.kernels[((o * self.in_ch + i) * self.k + dy) * self.k + dx]
    }
}

/// Valid (no padding) stride-1 2-D convolution.
///
/// # Panics
///
/// Panics if the input is smaller than the kernel or the channel counts
/// disagree.
pub fn conv2d<F: FloatExt>(
    input: &Tensor<F>,
    w: &ConvWeights<F>,
    hook: &mut dyn FaultHook,
) -> Tensor<F> {
    let (in_ch, h, width) = input.shape();
    assert_eq!(in_ch, w.in_ch, "channel mismatch");
    assert!(h >= w.k && width >= w.k, "input smaller than kernel");
    let oh = h - w.k + 1;
    let ow = width - w.k + 1;
    let mut out = Tensor::zeros(w.out_ch, oh, ow);
    for o in 0..w.out_ch {
        for y in 0..oh {
            for x in 0..ow {
                let mut acc = w.biases[o];
                for i in 0..in_ch {
                    for dy in 0..w.k {
                        for dx in 0..w.k {
                            acc = hook.touch(
                                w.kernel(o, i, dy, dx)
                                    .mul_add(input.get(i, y + dy, x + dx), acc),
                            );
                        }
                    }
                }
                out.set(o, y, x, acc);
            }
        }
    }
    out
}

/// 2x2 max pooling with stride 2 (trailing odd row/column dropped).
pub fn maxpool2<F: FloatExt>(input: &Tensor<F>, hook: &mut dyn FaultHook) -> Tensor<F> {
    let (c, h, w) = input.shape();
    let (oh, ow) = (h / 2, w / 2);
    assert!(oh > 0 && ow > 0, "input too small to pool");
    let mut out = Tensor::zeros(c, oh, ow);
    for ch in 0..c {
        for y in 0..oh {
            for x in 0..ow {
                let m = input
                    .get(ch, 2 * y, 2 * x)
                    .max(input.get(ch, 2 * y, 2 * x + 1))
                    .max(input.get(ch, 2 * y + 1, 2 * x))
                    .max(input.get(ch, 2 * y + 1, 2 * x + 1));
                out.set(ch, y, x, hook.touch(m));
            }
        }
    }
    out
}

/// ReLU: negatives become exactly zero — with max pooling, the CNN's
/// main natural fault-masking mechanism (paper Section 4.1).
pub fn relu<F: FloatExt>(input: &Tensor<F>, hook: &mut dyn FaultHook) -> Tensor<F> {
    let (c, h, w) = input.shape();
    let mut out = Tensor::zeros(c, h, w);
    for ch in 0..c {
        for y in 0..h {
            for x in 0..w {
                let v = input.get(ch, y, x);
                let a = if v > F::zero() { v } else { F::zero() };
                out.set(ch, y, x, hook.touch(a));
            }
        }
    }
    out
}

/// Leaky ReLU (slope 0.125 — exactly representable at every precision).
pub fn leaky_relu<F: FloatExt>(input: &Tensor<F>, hook: &mut dyn FaultHook) -> Tensor<F> {
    let (c, h, w) = input.shape();
    let slope = F::from_f64(0.125);
    let mut out = Tensor::zeros(c, h, w);
    for ch in 0..c {
        for y in 0..h {
            for x in 0..w {
                let v = input.get(ch, y, x);
                let a = if v >= F::zero() { v } else { v * slope };
                out.set(ch, y, x, hook.touch(a));
            }
        }
    }
    out
}

/// Fully connected layer: `out[j] = b[j] + sum_i w[j][i] * in[i]`.
///
/// # Panics
///
/// Panics if the weight matrix does not match the input length.
pub fn dense<F: FloatExt>(
    input: &[F],
    weights: &[F],
    biases: &[F],
    hook: &mut dyn FaultHook,
) -> Vec<F> {
    let n_out = biases.len();
    assert_eq!(weights.len(), n_out * input.len(), "weight matrix shape");
    let mut out = Vec::with_capacity(n_out);
    for j in 0..n_out {
        let mut acc = biases[j];
        for (i, &v) in input.iter().enumerate() {
            acc = hook.touch(weights[j * input.len() + i].mul_add(v, acc));
        }
        out.push(acc);
    }
    out
}

/// Argument magnitude beyond which `exp` has saturated at every studied
/// precision and no in-range polynomial executes.
const EXP_ARG_LIMIT: f64 = 80.0;

/// Cody-Waite two-term split of `ln 2` (`hi` exactly representable at
/// the target precision, `lo` the residual), per precision.
fn ln2_split(precision: mpr_softfloat::Precision) -> (f64, f64) {
    match precision {
        mpr_softfloat::Precision::Half => (0.693359375, -2.1219444005469057e-4),
        mpr_softfloat::Precision::Single => (0.693145751953125, 1.4286067653301193e-6),
        mpr_softfloat::Precision::Double => (0.6931471803691238, 1.9082149292705877e-10),
    }
}

/// `1 / k!` in the f64 master domain, for Taylor coefficients.
fn inv_factorial(k: usize) -> f64 {
    1.0 / (1..=k as u32).map(f64::from).product::<f64>()
}

/// In-precision `exp` with every intermediate exposed to the fault hook:
/// argument reduction, a precision-deep Horner recurrence, and the final
/// scale. GPUs evaluate transcendentals in software (paper Section 6.3),
/// so these intermediates are real fault sites.
pub fn exp_hooked<F: FloatExt>(x: F, hook: &mut dyn FaultHook) -> F {
    use mpr_softfloat::math::exp_terms;
    if x.is_nan() || x.is_infinite() {
        return x.exp();
    }
    let xf = x.to_f64();
    if !(-EXP_ARG_LIMIT..=EXP_ARG_LIMIT).contains(&xf) {
        return x.exp(); // saturated: no in-range polynomial executes
    }
    let log2e = F::from_f64(std::f64::consts::LOG2_E);
    let n = (x * log2e).to_f64().round() as i32;
    let nf = F::from_f64(n as f64);
    let (hi, lo) = ln2_split(F::PRECISION);
    let r = hook.touch((x - nf * F::from_f64(hi)) - nf * F::from_f64(lo));
    let terms = exp_terms(F::PRECISION);
    let mut acc = F::zero();
    for k in (1..=terms).rev() {
        let coeff = F::from_f64(inv_factorial(k));
        acc = hook.touch(acc.mul_add(r, coeff));
    }
    let p = hook.touch(acc.mul_add(r, F::one()));
    p.ldexp(n)
}

/// Logistic sigmoid `1 / (1 + exp(-x))`, evaluated in precision with the
/// exponential's intermediates exposed as fault sites (see
/// [`exp_hooked`]).
pub fn sigmoid<F: FloatExt>(x: F, hook: &mut dyn FaultHook) -> F {
    let e = exp_hooked(-x, hook);
    let e = hook.touch(e);
    hook.touch(F::one() / (F::one() + e))
}

/// Numerically stable in-precision softmax: subtracts the maximum before
/// exponentiating, so binary16 never overflows.
///
/// # Panics
///
/// Panics if `logits` is empty.
pub fn softmax<F: FloatExt>(logits: &[F], hook: &mut dyn FaultHook) -> Vec<F> {
    assert!(!logits.is_empty(), "softmax needs at least one logit");
    let max = logits.iter().fold(logits[0], |m, &v| m.max(v));
    let mut exps = Vec::with_capacity(logits.len());
    let mut sum = F::zero();
    for &l in logits {
        let shifted = hook.touch(l - max);
        let e = exp_hooked(shifted, hook);
        let e = hook.touch(e);
        sum = hook.touch(sum + e);
        exps.push(e);
    }
    exps.into_iter().map(|e| hook.touch(e / sum)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpr_fault::hook::GoldenHook;
    use mpr_softfloat::Half;

    fn hook() -> GoldenHook {
        GoldenHook::new()
    }

    #[test]
    fn conv_identity_kernel_shifts_nothing() {
        // A 1x1 kernel of weight 1 reproduces the input.
        let input: Tensor<f64> = Tensor::from_fn(1, 3, 3, |_, y, x| (y * 3 + x) as f64);
        let w = ConvWeights::new(vec![1.0], vec![0.0], 1, 1, 1);
        let mut h = hook();
        let out = conv2d(&input, &w, &mut h);
        assert_eq!(out.to_f64_vec(), input.to_f64_vec());
        assert_eq!(h.sites(), 9);
    }

    #[test]
    fn conv_box_filter_sums_windows() {
        let input: Tensor<f64> = Tensor::from_fn(1, 3, 3, |_, _, _| 1.0);
        let w = ConvWeights::new(vec![1.0; 4], vec![0.5], 1, 1, 2);
        let mut h = hook();
        let out = conv2d(&input, &w, &mut h);
        assert_eq!(out.shape(), (1, 2, 2));
        assert!(out.to_f64_vec().iter().all(|&v| v == 4.5));
    }

    #[test]
    fn conv_multi_channel_accumulates() {
        let input: Tensor<f64> = Tensor::from_fn(2, 2, 2, |c, _, _| (c + 1) as f64);
        // Two input channels, one output, 1x1 kernels of weight 1 and 10.
        let w = ConvWeights::new(vec![1.0, 10.0], vec![0.0], 2, 1, 1);
        let out = conv2d(&input, &w, &mut hook());
        assert!(out.to_f64_vec().iter().all(|&v| v == 21.0));
    }

    #[test]
    fn maxpool_picks_window_maxima() {
        let input: Tensor<f64> = Tensor::from_fn(1, 4, 4, |_, y, x| (y * 4 + x) as f64);
        let out = maxpool2(&input, &mut hook());
        assert_eq!(out.to_f64_vec(), vec![5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn maxpool_masks_non_maximum_corruption() {
        // The masking mechanism: corrupt a non-max value, pool output is
        // unchanged.
        let mut input: Tensor<f64> = Tensor::from_fn(1, 2, 2, |_, y, x| (y * 2 + x) as f64);
        let golden = maxpool2(&input, &mut hook()).to_f64_vec();
        input.set(0, 0, 0, 1.5); // below the max (3.0)
        let corrupted = maxpool2(&input, &mut hook()).to_f64_vec();
        assert_eq!(golden, corrupted);
    }

    #[test]
    fn relu_zeroes_negatives_exactly() {
        let input: Tensor<f64> = Tensor::from_fn(1, 1, 3, |_, _, x| x as f64 - 1.0);
        let out = relu(&input, &mut hook());
        assert_eq!(out.to_f64_vec(), vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn relu_masks_negative_corruption() {
        // A corrupted value that stays negative is annihilated.
        let a: Tensor<f64> = Tensor::from_fn(1, 1, 1, |_, _, _| -2.0);
        let b: Tensor<f64> = Tensor::from_fn(1, 1, 1, |_, _, _| -7.0);
        assert_eq!(
            relu(&a, &mut hook()).to_f64_vec(),
            relu(&b, &mut hook()).to_f64_vec()
        );
    }

    #[test]
    fn leaky_relu_scales_negatives() {
        let input: Tensor<f64> =
            Tensor::from_fn(1, 1, 2, |_, _, x| if x == 0 { -8.0 } else { 8.0 });
        let out = leaky_relu(&input, &mut hook());
        assert_eq!(out.to_f64_vec(), vec![-1.0, 8.0]);
    }

    #[test]
    fn dense_matches_reference() {
        let input = [1.0f64, 2.0];
        let weights = [1.0, 0.0, 0.0, 1.0, 1.0, 1.0]; // 3x2
        let biases = [0.0, 0.0, 0.5];
        let out = dense(&input, &weights, &biases, &mut hook());
        assert_eq!(out, vec![1.0, 2.0, 3.5]);
    }

    #[test]
    fn sigmoid_behaves() {
        let mut h = hook();
        let mid: f64 = sigmoid(0.0, &mut h);
        assert!((mid - 0.5).abs() < 1e-12);
        assert!(sigmoid(6.0f64, &mut h) > 0.99);
        assert!(sigmoid(-6.0f64, &mut h) < 0.01);
        let half = sigmoid(Half::from_f64(1.0), &mut h).to_f64();
        assert!((half - 0.7311).abs() < 5e-3);
    }

    #[test]
    fn softmax_normalizes_and_preserves_rank() {
        let logits = [1.0f64, 3.0, 2.0];
        let p = softmax(&logits, &mut hook());
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(p[1] > p[2] && p[2] > p[0], "{p:?}");
        // Matches the closed form.
        let want1 = (3.0f64 - 3.0).exp()
            / ((1.0f64 - 3.0).exp() + (3.0f64 - 3.0).exp() + (2.0f64 - 3.0).exp());
        assert!((p[1] - want1).abs() < 1e-9);
    }

    #[test]
    fn softmax_is_overflow_safe_in_half() {
        use mpr_softfloat::Half;
        // Logits near the binary16 ceiling: the max-shift keeps exps finite.
        let logits = [Half::from_f64(10.0), Half::from_f64(11.0)];
        let p = softmax(&logits, &mut hook());
        assert!(p.iter().all(|v| v.to_f64().is_finite()));
        let sum: f64 = p.iter().map(|v| v.to_f64()).sum();
        assert!((sum - 1.0).abs() < 1e-2, "sum={sum}");
    }

    #[test]
    fn exp_hooked_matches_exp_poly_fault_free() {
        use mpr_softfloat::math::exp_poly;
        for i in -40..=40 {
            let x = i as f64 * 0.5;
            let via_hook = exp_hooked(x, &mut hook());
            let direct = exp_poly(x);
            assert!(
                (via_hook - direct).abs() <= 1e-12 * direct.max(1e-300),
                "x={x}: {via_hook} vs {direct}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn conv_validates_channels() {
        let input: Tensor<f64> = Tensor::zeros(2, 3, 3);
        let w = ConvWeights::new(vec![1.0], vec![0.0], 1, 1, 1);
        let _ = conv2d(&input, &w, &mut hook());
    }
}
