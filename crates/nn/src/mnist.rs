//! The MNIST LeNet-style classifier.

use crate::layers::{conv2d, dense, maxpool2, relu, ConvWeights};
use crate::synth::{digit_image, gen_weights};
use crate::Tensor;
use mpr_fault::hook::FaultHook;
use mpr_fault::Workload;
use mpr_softfloat::{FloatExt, Precision};

/// A LeNet-style convolutional digit classifier — the CNN the paper
/// synthesizes on the FPGA (Section 3.1, "a topology very similar to
/// LeNet").
///
/// Topology (on a 16x16 proxy canvas): `conv 1->4 (5x5)` + leaky ReLU +
/// 2x2 max pool, `conv 4->8 (3x3)` + leaky ReLU + 2x2 max pool,
/// `dense 32->10`. Weights are generated once from a seed and cast into
/// each precision; the network is *not retrained* per precision,
/// matching the paper's methodology.
///
/// As a [`Workload`] its output is the 10 class logits; an SDC is
/// *critical* when the arg-max class changes
/// ([`crate::classify_logits`]).
#[derive(Debug, Clone)]
pub struct Mnist {
    seed: u64,
    digit: usize,
}

impl Mnist {
    /// The default classifier instance (digit class 3, default seed).
    pub fn new() -> Mnist {
        Mnist {
            seed: 0x313,
            digit: 3,
        }
    }

    /// Classifies a different synthetic digit class (0..=9).
    ///
    /// # Panics
    ///
    /// Panics if `digit > 9`.
    pub fn with_digit(mut self, digit: usize) -> Mnist {
        assert!(digit <= 9, "MNIST has classes 0..=9");
        self.digit = digit;
        self
    }

    /// Overrides the weight/data seed.
    pub fn with_seed(mut self, seed: u64) -> Mnist {
        self.seed = seed;
        self
    }

    fn run<F: FloatExt>(&self, hook: &mut dyn FaultHook) -> Vec<f64> {
        let input: Tensor<F> = digit_image(self.digit, self.seed ^ 0xD161, 16);

        let conv1 = ConvWeights::new(
            gen_weights(self.seed ^ 1, 4 * 25, 25),
            gen_weights(self.seed ^ 2, 4, 25),
            1,
            4,
            5,
        );
        let conv2 = ConvWeights::new(
            gen_weights(self.seed ^ 3, 8 * 4 * 9, 36),
            gen_weights(self.seed ^ 4, 8, 36),
            4,
            8,
            3,
        );
        let fc_w: Vec<F> = gen_weights(self.seed ^ 5, 10 * 32, 32);
        let fc_b: Vec<F> = gen_weights(self.seed ^ 6, 10, 32);

        let x = conv2d(&input, &conv1, hook); // 4 x 12 x 12
        let x = relu(&x, hook);
        let x = maxpool2(&x, hook); // 4 x 6 x 6
        let x = conv2d(&x, &conv2, hook); // 8 x 4 x 4
        let x = relu(&x, hook);
        let x = maxpool2(&x, hook); // 8 x 2 x 2
        let logits = dense(x.as_slice(), &fc_w, &fc_b, hook);
        logits.iter().map(|v| v.to_f64()).collect()
    }

    /// Fraction of a synthetic digit batch on which the fault-free
    /// network at `precision` agrees with its own `reference`-precision
    /// classification.
    ///
    /// This is the paper's accuracy-consistency check (Section 3.1: "the
    /// accuracy of the half precision version is less than 2% lower than
    /// the double one") — the weights are cast, never retrained, so any
    /// disagreement is pure rounding.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn batch_agreement(&self, precision: Precision, reference: Precision, batch: usize) -> f64 {
        assert!(batch > 0, "need at least one image");
        let mut agree = 0usize;
        for i in 0..batch {
            let instance = self
                .clone()
                .with_digit(i % 10)
                .with_seed(self.seed ^ ((i as u64 / 10) << 16));
            if instance.golden_class(precision) == instance.golden_class(reference) {
                agree += 1;
            }
        }
        agree as f64 / batch as f64
    }

    /// The class the fault-free network assigns at the given precision.
    pub fn golden_class(&self, precision: Precision) -> usize {
        let logits = self.run_golden(precision);
        logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            // mpr-allow: panic-hygiene -- the classifier head always emits ten logits
            .expect("ten logits")
    }
}

impl Default for Mnist {
    fn default() -> Self {
        Mnist::new()
    }
}

impl Workload for Mnist {
    fn name(&self) -> &str {
        "MNIST"
    }

    fn dispatch(&self, precision: Precision, hook: &mut dyn FaultHook) -> Vec<f64> {
        crate::dispatch_precision!(self, precision, hook)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpr_fault::ValueFault;

    #[test]
    fn outputs_ten_finite_logits() {
        let m = Mnist::new();
        for p in Precision::ALL {
            let logits = m.run_golden(p);
            assert_eq!(logits.len(), 10);
            assert!(logits.iter().all(|v| v.is_finite()), "{p}: {logits:?}");
        }
    }

    #[test]
    fn classification_is_stable_across_precisions() {
        // Casting weights to lower precision must not change the
        // fault-free classification (the paper reports <2% accuracy loss).
        let m = Mnist::new();
        let d = m.golden_class(Precision::Double);
        assert_eq!(m.golden_class(Precision::Single), d);
        assert_eq!(m.golden_class(Precision::Half), d);
    }

    #[test]
    fn site_count_is_substantial_and_precision_independent() {
        let m = Mnist::new();
        let n = m.site_count(Precision::Single);
        assert!(n > 10_000, "enough fault sites: {n}");
        assert_eq!(n, m.site_count(Precision::Double));
        assert_eq!(n, m.site_count(Precision::Half));
    }

    #[test]
    fn many_faults_are_masked_by_pooling_and_relu() {
        // The paper's FPGA result: CNNs naturally mask a significant
        // fraction of faults. Flip a low mantissa bit at scattered sites
        // and count unchanged outputs.
        let m = Mnist::new();
        let golden = m.run_golden(Precision::Single);
        let sites = m.site_count(Precision::Single);
        let mut masked = 0;
        let trials = 60;
        for t in 0..trials {
            let site = (t * sites) / trials;
            let out = m.run_with_fault(Precision::Single, site, ValueFault::BitFlip(8));
            if out == golden {
                masked += 1;
            }
        }
        assert!(masked > trials / 4, "only {masked}/{trials} masked");
    }

    #[test]
    fn precision_casting_barely_moves_accuracy() {
        // Paper Section 3.1: casting the weights costs < 2% accuracy.
        let m = Mnist::new();
        let half = m.batch_agreement(Precision::Half, Precision::Double, 40);
        let single = m.batch_agreement(Precision::Single, Precision::Double, 40);
        assert!(half >= 0.98, "half agreement {half}");
        assert!(single >= 0.98, "single agreement {single}");
        assert_eq!(
            m.batch_agreement(Precision::Double, Precision::Double, 10),
            1.0
        );
    }

    #[test]
    fn different_digits_produce_different_logits() {
        let a = Mnist::new().with_digit(1).run_golden(Precision::Double);
        let b = Mnist::new().with_digit(7).run_golden(Precision::Double);
        assert_ne!(a, b);
    }
}
