//! Facade crate for the mixed-precision reliability study.
//!
//! Re-exports every sub-crate under a stable path. See the README for the
//! architecture overview and `mpr_core` for the experiment runners.

pub use mpr_arch as arch;
pub use mpr_beam as beam;
pub use mpr_core as core;
pub use mpr_exp as exp;
pub use mpr_fault as fault;
pub use mpr_kernels as kernels;
pub use mpr_metrics as metrics;
pub use mpr_nn as nn;
pub use mpr_obs as obs;
pub use mpr_softfloat as softfloat;
