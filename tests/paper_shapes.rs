//! The headline qualitative results of the paper, asserted through the
//! public experiment API. Each test names the paper artifact it checks.

use mixed_precision_reliability::core::Study;
use std::sync::OnceLock;

/// One shared quick study; every shape below must hold at this seed.
/// The clones share one experiment engine (and thus one result store),
/// so the many figures projecting the same campaign cells execute each
/// cell once for the whole test binary.
fn study() -> Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::quick(0xE57)).clone()
}

#[test]
fn section4_fpga_fit_is_linear_in_area() {
    let fig3 = study().fig3_fpga_fit();
    // FIT ordering follows the synthesized area at every precision step.
    assert!(fig3.mxm_fit[0] > fig3.mxm_fit[1] && fig3.mxm_fit[1] > fig3.mxm_fit[2]);
    // Per-gate sensitivity (area/FIT) varies far less than FIT itself:
    // the area is "the primary responsible for the different error rates".
    let pg = fig3.mxm_per_gate;
    let spread =
        pg.iter().cloned().fold(f64::MIN, f64::max) / pg.iter().cloned().fold(f64::MAX, f64::min);
    let fit_spread = fig3.mxm_fit[0] / fig3.mxm_fit[2];
    assert!(
        spread < 0.6 * fit_spread,
        "per-gate spread {spread:.2} vs FIT spread {fit_spread:.2}"
    );
}

#[test]
fn section4_mnist_masks_faults_but_low_precision_errors_are_critical() {
    let fig3 = study().fig3_fpga_fit();
    // The CNN masks: lower FIT than MxM despite more resources.
    for i in 0..3 {
        assert!(fig3.mnist_fit[i] < fig3.mxm_fit[i]);
    }
    // Critical (misclassification) share grows as precision shrinks
    // (paper: 5% -> 14% -> 20%).
    assert!(fig3.mnist_critical_fraction[0] < fig3.mnist_critical_fraction[2]);
}

#[test]
fn figure4_fpga_double_tolerates_small_errors() {
    let fig4 = study().fig4_fpga_tre();
    let at_01pct = fig4.surviving_at(1e-3);
    // Paper: at 0.1% tolerance double sheds ~63%; half is nearly flat.
    assert!(
        (0.25..0.55).contains(&at_01pct[0]),
        "double survival {at_01pct:?}"
    );
    assert!(at_01pct[2] > 0.85, "half survival {at_01pct:?}");
}

#[test]
fn figure5_fpga_half_wins_mebf_by_about_a_third() {
    let fig5 = study().fig5_fpga_mebf();
    let gain = fig5.mxm_mebf[2] / fig5.mxm_mebf[1] - 1.0;
    // Paper: ~33% more executions between errors than single; accept a
    // generous band (the substrate is a simulator).
    assert!(
        (0.1..1.2).contains(&gain),
        "half-over-single gain {gain:.2}"
    );
}

#[test]
#[ignore = "paper-scale statistics (tens of seconds); opt in with `cargo test -- --ignored`"]
fn figure6_knc_single_precision_pays_in_fit() {
    // DUE events are an order of magnitude rarer than SDCs; use the
    // paper-scale session so the 2x control-bit ratio resolves.
    let fig6 = Study::paper(0xE57).fig6_knc_fit();
    // LavaMD and MxM: single SDC FIT above double, tracking the +33%/+47%
    // register allocations.
    let lava_ratio = fig6.sdc_fit[0][1] / fig6.sdc_fit[0][0];
    let mxm_ratio = fig6.sdc_fit[1][1] / fig6.sdc_fit[1][0];
    assert!((1.1..1.7).contains(&lava_ratio), "LavaMD {lava_ratio:.2}");
    assert!((1.2..1.8).contains(&mxm_ratio), "MxM {mxm_ratio:.2}");
    // DUE doubles with the lane count for all three codes.
    for i in 0..3 {
        let r = fig6.due_fit[i][1] / fig6.due_fit[i][0];
        assert!((1.6..2.5).contains(&r), "bench {i}: DUE ratio {r:.2}");
    }
}

#[test]
fn figure7_pvf_does_not_separate_precisions() {
    let fig7 = study().fig7_knc_pvf();
    for i in 0..3 {
        assert!(fig7.indistinguishable(i), "benchmark {i}");
    }
}

#[test]
fn figure9_knc_mebf_crossover_at_mxm() {
    let fig9 = study().fig9_knc_mebf();
    assert!(fig9.mebf[0][1] > fig9.mebf[0][0], "LavaMD: single wins");
    assert!(fig9.mebf[2][1] > fig9.mebf[2][0], "LUD: single wins");
    assert!(fig9.mebf[1][0] > fig9.mebf[1][1], "MxM: double wins");
}

#[test]
fn figure10_gpu_operation_dependent_trends() {
    let fig10 = study().fig10_gpu_fit();
    let [add, mul, fma] = fig10.micro_sdc;
    assert!(mul[0] > mul[1] && mul[1] > mul[2], "MUL: d>s>h {mul:?}");
    assert!(add[0] < add[1], "ADD inverts {add:?}");
    assert!(
        fma[2] < fma[0] && fma[2] < fma[1],
        "FMA: half lowest {fma:?}"
    );
}

#[test]
fn figure12_avf_isolates_the_double_core() {
    let fig12 = study().fig12_gpu_avf();
    for i in 0..3 {
        let d = fig12.avf[i][0].factor();
        let s = fig12.avf[i][1].factor();
        let h = fig12.avf[i][2].factor();
        assert!(d > s && d > h, "micro {i}: d={d:.3} s={s:.3} h={h:.3}");
        assert!((s - h).abs() < 0.1, "single~half share the FP32 core");
    }
}

#[test]
fn figure13_gpu_reduced_precision_wins_mebf() {
    let fig13 = study().fig13_gpu_mebf();
    // All three micros and both numeric apps gain MEBF monotonically.
    for (name, xs) in ["ADD", "MUL", "FMA", "LavaMD", "MxM"]
        .iter()
        .zip(fig13.mebf.iter())
    {
        assert!(xs[2] > xs[1] && xs[1] > xs[0], "{name}: {xs:?}");
    }
}

#[test]
fn discussion_yolo_half_is_reliable_but_slow() {
    let study = study();
    let fig10 = study.fig10_gpu_fit();
    // Half YOLOv3: clearly the lowest FIT. The quick-scale study has
    // real sampling noise, so accept any clear separation from single.
    assert!(fig10.yolo_sdc[2] < 0.9 * fig10.yolo_sdc[1]);
    // ...but its MEBF gain is eaten by the slower framework path
    // (Table 3: 0.283 s vs 0.079 s).
    let fig13 = study.fig13_gpu_mebf();
    let yolo = fig13.mebf[5];
    assert!(
        yolo[1] > yolo[2],
        "single-precision YOLO wins MEBF {yolo:?}"
    );
}
