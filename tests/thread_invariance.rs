//! Regression: campaign results and the on-disk cache must be
//! byte-identical regardless of the worker-thread count.
//!
//! Workers used to push severities and labels in per-worker stride
//! order, so the *vector order* inside a `CampaignResult` depended on
//! `--threads` even when the multiset of events did not. Aggregate
//! tables masked the bug; the raw vectors and the cached bytes exposed
//! it. Campaigns now tag every event with its strike index and merge in
//! strike order, making the raw result thread-invariant.

use mixed_precision_reliability::exp::{
    CellKey, CellKind, ClassifierId, DeviceId, Engine, ResultStore, SamplingPlan, WorkloadId,
};
use mixed_precision_reliability::fault::FaultModel;
use mixed_precision_reliability::softfloat::Precision;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

/// A classified beam cell: exercises severity order AND label order.
fn beam_cell() -> CellKey {
    CellKey {
        device: DeviceId::TitanV,
        workload: WorkloadId::Yolo,
        precision: Precision::Half,
        kind: CellKind::Beam {
            hours: 10.0,
            target_candidates: 160,
            classifier: ClassifierId::YoloDetections,
            sampling: SamplingPlan::Fixed,
        },
    }
}

/// An injection cell: exercises the fault campaign's merge path.
fn inject_cell() -> CellKey {
    CellKey {
        device: DeviceId::Knc3120a,
        workload: WorkloadId::Gemm { dim: 10 },
        precision: Precision::Single,
        kind: CellKind::Inject {
            injections: 200,
            model: FaultModel::SingleBit,
            live_fraction: 1.0,
            sampling: SamplingPlan::Fixed,
        },
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mpr_threadinv_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Every *result* cache file under `dir`, keyed by relative path.
/// `manifest.json` is excluded: it is run bookkeeping whose `attempts`
/// field legitimately changes between a cold run (1) and a warm replay
/// (0); its thread invariance is asserted separately on cold runs.
fn cache_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).expect("cache dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else if path.file_name().is_some_and(|n| n != "manifest.json") {
                let rel = path
                    .strip_prefix(dir)
                    .expect("under cache dir")
                    .to_string_lossy()
                    .into_owned();
                files.insert(rel, std::fs::read(&path).expect("cache file"));
            }
        }
    }
    files
}

/// The exact observable surface of one run: raw event vectors (bit
/// patterns, not rounded displays) plus the bytes the cache persisted.
struct RunTrace {
    beam_severities: Vec<u64>,
    beam_labels: Vec<String>,
    inject_severities: Vec<u64>,
    cache: BTreeMap<String, Vec<u8>>,
}

fn run_cold(threads: usize, dir: &Path) -> RunTrace {
    let store = Arc::new(ResultStore::with_cache_dir(dir));
    let engine = Engine::new(99).with_threads(threads).with_store(store);
    let beam = engine.run_one(&beam_cell());
    let beam = beam.beam();
    let inject = engine.run_one(&inject_cell());
    let inject = inject.inject();
    RunTrace {
        beam_severities: beam.severities.iter().map(|s| s.to_bits()).collect(),
        beam_labels: beam.labels.iter().map(|l| l.to_string()).collect(),
        inject_severities: inject.severities.iter().map(|s| s.to_bits()).collect(),
        cache: cache_bytes(dir),
    }
}

#[test]
fn raw_campaign_vectors_and_cache_bytes_are_thread_invariant() {
    let base_dir = temp_dir("t1");
    let baseline = run_cold(1, &base_dir);
    assert!(
        !baseline.beam_severities.is_empty(),
        "cell must observe SDC events for the order to matter"
    );
    assert_eq!(baseline.beam_severities.len(), baseline.beam_labels.len());
    assert!(!baseline.cache.is_empty(), "cache must persist the cells");

    for threads in [2, 5] {
        let dir = temp_dir(&format!("t{threads}"));
        let trace = run_cold(threads, &dir);
        assert_eq!(
            trace.beam_severities, baseline.beam_severities,
            "beam severity order must not depend on threads={threads}"
        );
        assert_eq!(
            trace.beam_labels, baseline.beam_labels,
            "beam label order must not depend on threads={threads}"
        );
        assert_eq!(
            trace.inject_severities, baseline.inject_severities,
            "injection severity order must not depend on threads={threads}"
        );
        assert_eq!(
            trace.cache, baseline.cache,
            "on-disk cache bytes must not depend on threads={threads}"
        );
        assert_eq!(
            std::fs::read(dir.join("manifest.json")).ok(),
            std::fs::read(base_dir.join("manifest.json")).ok(),
            "cold-run manifest bytes must not depend on threads={threads}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    // Warm disk: a fresh store over the same directory replays both
    // cells without executing and leaves every byte untouched.
    let warm_store = Arc::new(ResultStore::with_cache_dir(&base_dir));
    let warm = Engine::new(99)
        .with_threads(5)
        .with_store(warm_store.clone());
    let beam = warm.run_one(&beam_cell());
    let inject = warm.run_one(&inject_cell());
    assert_eq!(warm_store.executed(), 0, "warm rerun must execute nothing");
    assert_eq!(warm_store.disk_hits(), 2);
    assert_eq!(
        beam.beam()
            .severities
            .iter()
            .map(|s| s.to_bits())
            .collect::<Vec<_>>(),
        baseline.beam_severities
    );
    assert_eq!(
        beam.beam()
            .labels
            .iter()
            .map(|l| l.to_string())
            .collect::<Vec<_>>(),
        baseline.beam_labels
    );
    assert_eq!(
        inject
            .inject()
            .severities
            .iter()
            .map(|s| s.to_bits())
            .collect::<Vec<_>>(),
        baseline.inject_severities
    );
    assert_eq!(cache_bytes(&base_dir), baseline.cache);

    std::fs::remove_dir_all(&base_dir).ok();
}
