//! Batched strike execution (DT001): campaign results must be
//! byte-identical for *any* strike batch size, at any thread count.
//!
//! Batching regroups strike *execution* — it never moves an RNG draw.
//! Each strike's stream is still seeded from `(seed, strike index)`,
//! sites and faults are drawn in the gather phase in exactly the old
//! per-strike order, and every observation is tagged with its strike
//! index before the merge sorts on it. So batch size, like thread
//! count, is a pure performance knob: severities, labels, counts, and
//! therefore the cached campaign bytes cannot depend on it.

use mixed_precision_reliability::arch::{Fpga, VoltaGpu};
use mixed_precision_reliability::beam::{BeamCampaign, BeamSession};
use mixed_precision_reliability::fault::InjectionCampaign;
use mixed_precision_reliability::kernels::{profiles, Gemm, Lud};
use mixed_precision_reliability::obs::fnv1a64;
use mixed_precision_reliability::softfloat::Precision;

/// FNV-1a over the little-endian bit patterns — bit-exact, NaN-safe.
fn hash_f64s(v: &[f64]) -> u64 {
    let mut bytes = Vec::with_capacity(v.len() * 8);
    for x in v {
        bytes.extend_from_slice(&x.to_bits().to_le_bytes());
    }
    fnv1a64(&bytes)
}

const BATCHES: [usize; 3] = [1, 7, 64];
const THREADS: [usize; 2] = [1, 3];

#[test]
fn injection_results_are_invariant_to_batch_size_and_threads() {
    let gemm = Gemm::new(8);
    let lud = Lud::new(10);
    let cases: [(
        &str,
        &dyn mixed_precision_reliability::fault::Workload,
        Precision,
    ); 3] = [
        ("gemm half", &gemm, Precision::Half),
        ("gemm single", &gemm, Precision::Single),
        ("lud double", &lud, Precision::Double),
    ];
    for (name, w, precision) in cases {
        let baseline = InjectionCampaign::new(w, precision)
            .injections(220)
            .seed(42)
            .threads(1)
            .strike_batch(1)
            .run();
        assert!(
            baseline.counts.sdc > 0,
            "{name}: cell must observe SDCs for the order to matter"
        );
        for threads in THREADS {
            for batch in BATCHES {
                let r = InjectionCampaign::new(w, precision)
                    .injections(220)
                    .seed(42)
                    .threads(threads)
                    .strike_batch(batch)
                    .run();
                assert_eq!(
                    (r.counts.masked, r.counts.sdc, r.counts.due),
                    (
                        baseline.counts.masked,
                        baseline.counts.sdc,
                        baseline.counts.due
                    ),
                    "{name}: counts moved at threads={threads} batch={batch}"
                );
                assert_eq!(
                    hash_f64s(&r.severities),
                    hash_f64s(&baseline.severities),
                    "{name}: severity bits moved at threads={threads} batch={batch}"
                );
            }
        }
    }
}

#[test]
fn beam_results_are_invariant_to_batch_size_and_threads() {
    let gemm = Gemm::new(8);
    let fpga = Fpga::zynq7000();
    let gpu = VoltaGpu::titan_v();
    let fpga_profile = profiles::mxm_fpga();
    let gpu_profile = profiles::mxm_gpu();

    // One persistent-fault (FPGA) and one transient (GPU) campaign:
    // the two fault-draw branches of the gather phase.
    type CampaignFn<'a> = &'a dyn Fn(usize, usize) -> (u64, u64, u64);
    let runs: [(&str, CampaignFn); 2] = [
        ("fpga half", &|threads, batch| {
            let mut session = BeamSession::quick(11).with_target_candidates(150);
            session.threads = threads;
            let r = BeamCampaign::new(&fpga, &gemm, &fpga_profile, Precision::Half)
                .session(session)
                .strike_batch(batch)
                .run();
            (r.candidates, r.sdc.events(), hash_f64s(&r.severities))
        }),
        ("gpu single", &|threads, batch| {
            let mut session = BeamSession::quick(13).with_target_candidates(150);
            session.threads = threads;
            let r = BeamCampaign::new(&gpu, &gemm, &gpu_profile, Precision::Single)
                .session(session)
                .strike_batch(batch)
                .run();
            (r.candidates, r.sdc.events(), hash_f64s(&r.severities))
        }),
    ];
    for (name, run) in runs {
        let baseline = run(1, 1);
        assert!(baseline.1 > 0, "{name}: campaign must observe SDCs");
        for threads in THREADS {
            for batch in BATCHES {
                assert_eq!(
                    run(threads, batch),
                    baseline,
                    "{name}: beam results moved at threads={threads} batch={batch}"
                );
            }
        }
    }
}
