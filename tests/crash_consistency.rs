//! Crash-consistency property suite: the persistence layer must
//! converge to byte-identical artifacts no matter where a crash lands,
//! which faults the chaos schedule injects, or when the run is
//! cancelled.
//!
//! The central property (`a_crash_at_every_operation_is_recoverable`)
//! simulates a fail-stop crash at *every* filesystem operation of a
//! campaign in turn, restarts on a clean filesystem, and asserts the
//! recovered cache is byte-identical to an untroubled run's. Cache
//! entries are compared byte-wise; the manifest is compared
//! structurally (a resumed run legitimately records different attempt
//! counts) and must report nothing unfinished.
//!
//! Hostile tags are process-global; this file uses the 0xE0_00xx range.

use mixed_precision_reliability::exp::{
    CellKey, CellKind, CellState, ChaosConfig, ChaosFs, DeviceId, Engine, ExperimentPlan,
    FailureKind, Manifest, ResultStore, WorkloadId,
};
use mixed_precision_reliability::fault::hostile::HostileMode;
use mixed_precision_reliability::kernels::MicroKernelOp;
use mixed_precision_reliability::softfloat::Precision;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

fn accumulate_cell(workload: WorkloadId, precision: Precision) -> CellKey {
    CellKey {
        device: DeviceId::Zynq7000,
        workload,
        precision,
        kind: CellKind::Accumulate {
            faults: 4,
            trials: 6,
        },
    }
}

/// A small plan with more than one commit per run: two workloads at
/// two precisions.
fn small_plan() -> ExperimentPlan {
    let mut plan = ExperimentPlan::new();
    for workload in [
        WorkloadId::Gemm { dim: 8 },
        WorkloadId::Micro {
            op: MicroKernelOp::Add,
            threads: 32,
            iters: 256,
        },
    ] {
        for precision in [Precision::Single, Precision::Half] {
            plan.push(accumulate_cell(workload, precision));
        }
    }
    plan
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mpr_crash_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Cache-entry bytes keyed by file name, excluding the manifest.
fn cache_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name == "manifest.json" || !name.ends_with(".json") {
            continue;
        }
        out.insert(name, std::fs::read(entry.path()).expect("read cache entry"));
    }
    out
}

fn engine_on(dir: &Path, threads: usize) -> Engine {
    Engine::new(2019)
        .with_threads(threads)
        .with_store(Arc::new(ResultStore::with_cache_dir(dir)))
}

fn chaos_engine_on(dir: &Path, threads: usize, cfg: ChaosConfig) -> (Engine, Arc<ChaosFs>) {
    let chaos = Arc::new(ChaosFs::new(cfg));
    let engine = Engine::new(2019)
        .with_threads(threads)
        .with_store(Arc::new(ResultStore::with_cache_dir_on(dir, chaos.clone())));
    (engine, chaos)
}

/// Asserts the directory's manifest exists, parses, and records every
/// cell as finished.
fn assert_manifest_settled(dir: &Path) {
    let manifest = Manifest::load(dir).expect("manifest present after recovery");
    assert!(
        manifest.unfinished().is_empty(),
        "unfinished cells after recovery: {:?}",
        manifest.unfinished()
    );
}

/// The tentpole property: simulate a fail-stop crash at every
/// filesystem operation of the campaign in turn; after each crash,
/// restart on a clean filesystem and assert the recovered artifacts
/// are byte-identical to an untroubled run's.
#[test]
fn a_crash_at_every_operation_is_recoverable() {
    let plan = small_plan();

    // Golden artifacts from an untroubled run.
    let golden_dir = temp_dir("golden");
    engine_on(&golden_dir, 1).run(&plan);
    let golden = cache_bytes(&golden_dir);
    assert!(!golden.is_empty(), "golden run must persist entries");

    // Probe the operation count with a quiet (observe-only) schedule.
    let probe_dir = temp_dir("probe");
    let (engine, chaos) = chaos_engine_on(&probe_dir, 1, ChaosConfig::quiet(9));
    engine.run(&plan);
    let total_ops = chaos.stats().ops;
    assert!(
        total_ops > 10,
        "expected a real op sequence, got {total_ops}"
    );

    for k in 0..=total_ops {
        let dir = temp_dir(&format!("op{k}"));
        let (engine, chaos) = chaos_engine_on(
            &dir,
            1,
            ChaosConfig {
                seed: 9,
                rate: 0.0,
                crash_at: Some(k),
            },
        );
        // The in-memory results must survive any persistence outcome.
        let results = engine.try_run(&plan);
        assert!(
            results.iter().all(Result::is_ok),
            "crash at op {k} leaked into cell results"
        );
        assert!(
            k >= total_ops || chaos.stats().crashed,
            "crash point {k} never reached"
        );
        drop(engine);

        // Restart on a clean filesystem and resume.
        engine_on(&dir, 1).run(&plan);
        assert_eq!(
            cache_bytes(&dir),
            golden,
            "artifacts diverge after crash at op {k}"
        );
        assert_manifest_settled(&dir);
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&golden_dir).ok();
    std::fs::remove_dir_all(&probe_dir).ok();
}

/// The same seed must inject the same faults — independent of thread
/// count and of the directory the run persists into — and the
/// recovered artifacts must be identical.
#[test]
fn chaos_schedule_is_deterministic_across_thread_counts() {
    let plan = small_plan();
    let cfg = ChaosConfig {
        seed: 0xC0FFEE,
        rate: 0.15,
        crash_at: None,
    };

    let mut snapshots = Vec::new();
    let mut recovered = Vec::new();
    for threads in [1, 2, 5] {
        let dir = temp_dir(&format!("det{threads}"));
        let (engine, chaos) = chaos_engine_on(&dir, threads, cfg);
        engine.run(&plan);
        let stats = chaos.stats();
        snapshots.push((threads, chaos.trace_sorted(), stats.injected, stats.ops));
        // Recovery must converge regardless of what the storm hit.
        engine_on(&dir, threads).run(&plan);
        assert_manifest_settled(&dir);
        recovered.push(cache_bytes(&dir));
        std::fs::remove_dir_all(&dir).ok();
    }
    let (_, first_trace, first_injected, first_ops) = &snapshots[0];
    assert!(
        first_injected.iter().map(|(_, n)| n).sum::<u64>() > 0,
        "rate 0.15 over this plan should inject at least one fault"
    );
    for (threads, trace, injected, ops) in &snapshots[1..] {
        assert_eq!(trace, first_trace, "trace diverges at {threads} threads");
        assert_eq!(
            injected, first_injected,
            "fault mix diverges at {threads} threads"
        );
        assert_eq!(ops, first_ops, "op count diverges at {threads} threads");
    }
    for bytes in &recovered[1..] {
        assert_eq!(
            bytes, &recovered[0],
            "recovered artifacts diverge across thread counts"
        );
    }
}

/// A corrupt manifest ledger is quarantined, resume re-runs exactly
/// the uncached subset, and a fresh valid manifest replaces the bad
/// one.
#[test]
fn corrupt_manifest_is_quarantined_and_resume_completes() {
    let plan = {
        let mut plan = ExperimentPlan::new();
        plan.push(accumulate_cell(
            WorkloadId::Gemm { dim: 8 },
            Precision::Single,
        ));
        plan.push(accumulate_cell(
            WorkloadId::Gemm { dim: 8 },
            Precision::Half,
        ));
        plan
    };
    let dir = temp_dir("corrupt");

    // Seed the cache with only the first cell.
    let seeder = {
        let mut p = ExperimentPlan::new();
        p.push(plan.cells()[0].clone());
        p
    };
    engine_on(&dir, 1).run(&seeder);

    // Torn ledger: garbage where the manifest should be.
    std::fs::write(dir.join("manifest.json"), b"{\"format\":\"mpr-exp-man")
        .expect("write garbage manifest");

    let engine = engine_on(&dir, 1);
    let results = engine.try_run(&plan);
    assert!(results.iter().all(Result::is_ok));
    assert_eq!(
        engine.store().executed(),
        1,
        "only the uncached cell re-executes; the bad ledger never triggers a full re-run"
    );
    assert!(
        dir.join("manifest.json.corrupt").exists(),
        "bad ledger is preserved for forensics, not deleted"
    );
    let manifest = Manifest::load(&dir).expect("fresh manifest written");
    assert_eq!(manifest.cells.len(), 2);
    assert!(manifest
        .cells
        .values()
        .all(|status| status.state == CellState::Ok));
    std::fs::remove_dir_all(&dir).ok();
}

/// Every durable commit follows write-tmp, fsync-file, rename,
/// fsync-dir — observed through a quiet chaos layer's trace.
#[test]
fn durable_commits_follow_the_tmp_fsync_rename_protocol() {
    let plan = {
        let mut p = ExperimentPlan::new();
        p.push(accumulate_cell(
            WorkloadId::Gemm { dim: 8 },
            Precision::Double,
        ));
        p
    };
    let dir = temp_dir("protocol");
    let (engine, chaos) = chaos_engine_on(&dir, 1, ChaosConfig::quiet(3));
    engine.run(&plan);
    let trace = chaos.trace();

    // Two commits happen (cache entry, then manifest); spot-check the
    // manifest's commit obeys the protocol order within the trace.
    let idx = |needle: &str| {
        trace
            .iter()
            .position(|line| line == needle)
            .unwrap_or_else(|| panic!("`{needle}` missing from trace {trace:#?}"))
    };
    let write_tmp = idx("write manifest.json.tmp -> ok");
    let sync_tmp = idx("syncfile manifest.json.tmp -> ok");
    let rename = idx("rename manifest.json -> ok");
    let sync_dir = trace
        .iter()
        .rposition(|line| line == "syncdir <dir> -> ok")
        .expect("parent directory fsync present");
    assert!(
        write_tmp < sync_tmp && sync_tmp < rename && rename < sync_dir,
        "durability protocol out of order: {trace:#?}"
    );
    // The cache entry commit follows the same shape with a hashed name.
    assert!(
        trace
            .iter()
            .filter(|line| line.starts_with("syncfile ") && line.ends_with(".tmp -> ok"))
            .count()
            >= 2,
        "both commits fsync their tmp file: {trace:#?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Stale `*.tmp` residue from a crashed commit is swept when the store
/// opens, and real entries survive the sweep.
#[test]
fn stale_tmp_files_are_swept_on_store_open() {
    let plan = {
        let mut p = ExperimentPlan::new();
        p.push(accumulate_cell(
            WorkloadId::Gemm { dim: 8 },
            Precision::Single,
        ));
        p
    };
    let dir = temp_dir("sweep");
    engine_on(&dir, 1).run(&plan);
    let entries_before = cache_bytes(&dir);
    std::fs::write(dir.join("0123456789abcdef.json.tmp"), b"torn").expect("tmp residue");
    std::fs::write(dir.join("manifest.json.tmp"), b"torn").expect("tmp residue");

    let store = ResultStore::with_cache_dir(&dir);
    assert_eq!(store.take_tmp_swept(), 2, "both stale tmp files swept");
    assert!(!dir.join("0123456789abcdef.json.tmp").exists());
    assert!(!dir.join("manifest.json.tmp").exists());
    assert_eq!(
        cache_bytes(&dir),
        entries_before,
        "the sweep never touches committed entries"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A pre-cancelled engine completes nothing, consumes no attempt
/// budget, and flushes a manifest whose cancelled cells drive an exact
/// resume.
#[test]
fn cancelled_run_is_resumable() {
    let plan = small_plan();
    let dir = temp_dir("cancel");

    let engine = engine_on(&dir, 1);
    engine.cancel_token().cancel();
    let results = engine.try_run(&plan);
    for result in &results {
        match result {
            Err(failure) => {
                assert_eq!(failure.kind, FailureKind::Cancelled);
                assert_eq!(failure.attempts, 0, "no budget burned before start");
            }
            Ok(_) => panic!("pre-cancelled run completed a cell"),
        }
    }
    let manifest = Manifest::load(&dir).expect("cancelled run still flushes the ledger");
    assert!(manifest
        .cells
        .values()
        .all(|status| status.state == CellState::Cancelled));

    // Resume without the cancel: everything completes, and the final
    // artifacts match an untroubled run byte for byte.
    engine_on(&dir, 1).run(&plan);
    assert_manifest_settled(&dir);
    let clean_dir = temp_dir("cancel_clean");
    engine_on(&clean_dir, 1).run(&plan);
    assert_eq!(cache_bytes(&dir), cache_bytes(&clean_dir));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&clean_dir).ok();
}

/// A cancel landing mid-run finishes in-flight cells, cancels the
/// rest, and resumes to a byte-identical final state.
#[test]
fn mid_run_cancel_finishes_in_flight_cells_and_resumes() {
    let slow = accumulate_cell(
        WorkloadId::Hostile {
            tag: 0xE0_0010,
            mode: HostileMode::SlowStrike { millis: 40 },
        },
        Precision::Single,
    );
    let fast = accumulate_cell(WorkloadId::Gemm { dim: 8 }, Precision::Single);
    let mut plan = ExperimentPlan::new();
    plan.push(slow.clone());
    plan.push(fast.clone());

    let dir = temp_dir("midcancel");
    let engine = engine_on(&dir, 1);
    let token = engine.cancel_token();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(15));
        token.cancel();
    });
    let results = engine.try_run(&plan);
    canceller.join().expect("canceller joins");
    let cancelled = results
        .iter()
        .filter(|r| matches!(r, Err(f) if f.kind == FailureKind::Cancelled))
        .count();
    assert!(
        cancelled >= 1,
        "the 15ms cancel should land before the plan drains: {results:?}"
    );

    // Resume: the fresh engine has no cancel; the run completes and
    // matches a never-cancelled run byte for byte.
    engine_on(&dir, 1).run(&plan);
    assert_manifest_settled(&dir);
    let clean_dir = temp_dir("midcancel_clean");
    engine_on(&clean_dir, 1).run(&plan);
    assert_eq!(cache_bytes(&dir), cache_bytes(&clean_dir));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&clean_dir).ok();
}
