//! End-to-end integration: soft-float substrate -> kernel -> fault
//! injection -> beam campaign -> metrics, through the public facade.

use mixed_precision_reliability::arch::{Device, Fpga, VoltaGpu, XeonPhiKnc};
use mixed_precision_reliability::beam::{BeamCampaign, BeamSession};
use mixed_precision_reliability::fault::{FaultModel, InjectionCampaign, Workload};
use mixed_precision_reliability::kernels::{profiles, Gemm, LavaMd, Micro, MicroKernelOp};
use mixed_precision_reliability::metrics::{Mebf, TreCurve};
use mixed_precision_reliability::softfloat::{Half, Precision};

#[test]
fn half_precision_arithmetic_reaches_the_campaign_layer() {
    // A half-precision GEMM executed through the soft-float substrate
    // must produce outputs representable in binary16.
    let gemm = Gemm::new(8);
    let out = gemm.run_golden(Precision::Half);
    for &v in &out {
        let h = Half::from_f64(v);
        assert_eq!(h.to_f64(), v, "output {v} must be a binary16 value");
    }
}

#[test]
fn injection_report_feeds_metrics_types() {
    let micro = Micro::new(MicroKernelOp::Mul, 8, 64);
    let report = InjectionCampaign::new(&micro, Precision::Single)
        .injections(200)
        .seed(1)
        .model(FaultModel::single_bit())
        .run();
    let v = report.vulnerability();
    let (lo, hi) = v.ci95();
    assert!(lo <= v.factor() && v.factor() <= hi);
    let curve: TreCurve = report.tre_curve();
    assert!(curve.surviving_fraction(0.0) <= 1.0);
}

#[test]
fn beam_campaign_on_every_device_family() {
    let gemm = Gemm::new(10);
    let session = BeamSession::quick(5).with_target_candidates(120);

    let gpu = VoltaGpu::titan_v();
    let g = BeamCampaign::new(&gpu, &gemm, &profiles::mxm_gpu(), Precision::Half)
        .session(session)
        .run();
    assert!(g.fit_sdc().au() > 0.0);

    let knc = XeonPhiKnc::coprocessor_3120a();
    let k = BeamCampaign::new(&knc, &gemm, &profiles::mxm_knc(), Precision::Single)
        .session(session)
        .run();
    assert!(k.fit_sdc().au() > 0.0);
    assert!(k.due.events() > 0);

    let fpga = Fpga::zynq7000();
    let f = BeamCampaign::new(&fpga, &gemm, &profiles::mxm_fpga(), Precision::Double)
        .session(session)
        .run();
    assert_eq!(f.due.events(), 0);

    // MEBF is comparable across configurations of the same device.
    let m: Mebf = g.mebf();
    assert!(m.executions() > 0.0);
}

#[test]
fn knc_rejects_half_everywhere() {
    let knc = XeonPhiKnc::coprocessor_3120a();
    assert!(!knc.supports(Precision::Half));
    let lavamd = LavaMd::new(1, 2).for_knc();
    // Workload supports half in principle; the device gate is what
    // blocks the campaign.
    assert!(lavamd.supports(Precision::Half));
    let profile = profiles::lavamd_knc();
    let result = std::panic::catch_unwind(|| {
        let _ = BeamCampaign::new(&knc, &lavamd, &profile, Precision::Half);
    });
    assert!(result.is_err());
}

#[test]
fn transcendental_unit_variant_changes_sites_not_golden() {
    let plain = LavaMd::new(2, 2);
    let knc = LavaMd::new(2, 2).for_knc();
    for p in [Precision::Double, Precision::Single] {
        let a = plain.run_golden(p);
        let b = knc.run_golden(p);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() <= 1e-2 * x.abs().max(1e-6), "{p}: {x} vs {y}");
        }
        assert_ne!(
            plain.site_count(p),
            knc.site_count(p),
            "unit model exposes different state"
        );
    }
}

#[test]
fn exposure_and_time_are_consistent_for_every_pairing() {
    // Devices answer for any (profile, precision) they support without
    // panicking, with positive times and exposures.
    let devices: Vec<Box<dyn Device>> = vec![
        Box::new(VoltaGpu::titan_v()),
        Box::new(XeonPhiKnc::coprocessor_3120a()),
        Box::new(Fpga::zynq7000()),
    ];
    let profs = [
        profiles::mxm_gpu(),
        profiles::lavamd_gpu(),
        profiles::mxm_knc(),
        profiles::lavamd_knc(),
        profiles::lud_knc(),
        profiles::mxm_fpga(),
        profiles::micro(MicroKernelOp::Add),
    ];
    for d in &devices {
        for prof in &profs {
            for p in Precision::ALL {
                if !d.supports(p) {
                    continue;
                }
                let t = d.exec_time(prof, p);
                let e = d.exposure(prof, p);
                assert!(t > 0.0 && t.is_finite(), "{} {} {p}", d.name(), prof.name);
                assert!(e.compute > 0.0, "{} {} {p}", d.name(), prof.name);
                assert!(e.due >= 0.0);
                assert!((0.0..=1.0).contains(&e.pipeline_fraction));
            }
        }
    }
}

#[test]
fn facade_reexports_are_coherent() {
    // The root crate re-exports the same types the sub-crates define.
    let h: mixed_precision_reliability::softfloat::Half = Half::from_f64(2.0);
    assert_eq!(h.to_f64(), 2.0);
    let p: Precision = "half".parse().unwrap();
    assert_eq!(p, Precision::Half);
    assert_eq!(p.total_bits(), 16);
    let _ = mixed_precision_reliability::core::Study::quick(0);
}
