//! The experiment engine's contracts, end to end through the public
//! facade: exactly-once execution of duplicated cells, byte-identical
//! results across cache temperature (cold / warm memory / warm disk),
//! and invariance under the worker-thread count.

use mixed_precision_reliability::core::Study;
use mixed_precision_reliability::exp::{
    CellKey, CellKind, ClassifierId, DeviceId, Engine, ExperimentPlan, SamplingPlan, WorkloadId,
};
use mixed_precision_reliability::softfloat::Precision;

fn beam_cell(precision: Precision, target_candidates: u64) -> CellKey {
    CellKey {
        device: DeviceId::Zynq7000,
        workload: WorkloadId::Gemm { dim: 10 },
        precision,
        kind: CellKind::Beam {
            hours: 10.0,
            target_candidates,
            classifier: ClassifierId::None,
            sampling: SamplingPlan::Fixed,
        },
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mpr_engine_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A table that touches beam, injection, and accumulation cells alike.
fn fingerprint(study: &Study) -> String {
    format!(
        "{}\n{}\n{}",
        study.fig3_fpga_fit().to_table(),
        study.fig7_knc_pvf().to_table(),
        study.ablation_fault_accumulation().to_table()
    )
}

#[test]
fn duplicated_cells_execute_exactly_once() {
    let mut plan = ExperimentPlan::new();
    for _ in 0..4 {
        plan.push(beam_cell(Precision::Half, 80));
    }
    plan.push(beam_cell(Precision::Single, 80));

    let engine = Engine::new(11);
    let results = engine.run(&plan);
    assert_eq!(results.len(), 5, "one result per request");
    assert_eq!(engine.store().executed(), 2, "two unique cells");

    // The four duplicate requests all see the same campaign.
    let first = results[0].beam();
    for r in &results[1..4] {
        assert_eq!(first.sdc.events(), r.beam().sdc.events());
        assert_eq!(first.severities, r.beam().severities);
    }
}

#[test]
fn figures_share_cells_through_the_study_engine() {
    let study = Study::quick(31);
    study.fig3_fpga_fit();
    let after_fig3 = study.executed_cells();
    assert!(after_fig3 > 0);
    // Figures 4 and 5 project the same six FPGA campaigns: nothing new
    // executes.
    study.fig4_fpga_tre();
    study.fig5_fpga_mebf();
    assert_eq!(study.executed_cells(), after_fig3);
}

#[test]
fn thread_count_does_not_change_any_table() {
    let baseline = {
        let study = Study::quick(33).with_threads(1);
        fingerprint(&study)
    };
    for threads in [2, 5] {
        let study = Study::quick(33).with_threads(threads);
        assert_eq!(fingerprint(&study), baseline, "threads={threads}");
    }
}

#[test]
fn disk_cache_round_trips_byte_identically_and_skips_execution() {
    let dir = temp_dir("roundtrip");

    // Cold: everything executes, results land on disk.
    let cold_study = Study::quick(37).with_cache_dir(&dir);
    let cold = fingerprint(&cold_study);
    let executed_cold = cold_study.executed_cells();
    assert!(executed_cold > 0);

    // Warm memory: rebuilding the same tables executes nothing new.
    let warm = fingerprint(&cold_study);
    assert_eq!(cold, warm, "memory-warm rerun must be byte-identical");
    assert_eq!(cold_study.executed_cells(), executed_cold);

    // Warm disk: a fresh study (new process, simulated) replays every
    // cell from the cache — zero executions, byte-identical tables.
    let disk_study = Study::quick(37).with_cache_dir(&dir);
    let disk = fingerprint(&disk_study);
    assert_eq!(cold, disk, "disk-warm rerun must be byte-identical");
    assert_eq!(disk_study.executed_cells(), 0, "all cells from disk");
    assert!(disk_study.engine().store().disk_hits() > 0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn disk_cache_is_seed_keyed() {
    let dir = temp_dir("seedkey");

    let a = Study::quick(5).with_cache_dir(&dir);
    a.fig7_knc_pvf();
    assert!(a.executed_cells() > 0);

    // A different seed must not see seed 5's entries.
    let b = Study::quick(6).with_cache_dir(&dir);
    b.fig7_knc_pvf();
    assert!(b.executed_cells() > 0, "different seed must re-execute");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn classified_beam_cells_survive_the_disk_round_trip() {
    let dir = temp_dir("labels");
    let key = CellKey {
        device: DeviceId::TitanV,
        workload: WorkloadId::Yolo,
        precision: Precision::Half,
        kind: CellKind::Beam {
            hours: 10.0,
            target_candidates: 120,
            classifier: ClassifierId::YoloDetections,
            sampling: SamplingPlan::Fixed,
        },
    };

    let store =
        std::sync::Arc::new(mixed_precision_reliability::exp::ResultStore::with_cache_dir(&dir));
    let live = Engine::new(13).with_store(store).run_one(&key);

    let replay_store =
        std::sync::Arc::new(mixed_precision_reliability::exp::ResultStore::with_cache_dir(&dir));
    let replayed = Engine::new(13)
        .with_store(replay_store.clone())
        .run_one(&key);
    assert_eq!(replay_store.executed(), 0);
    assert_eq!(replay_store.disk_hits(), 1);
    assert_eq!(live.beam().labels, replayed.beam().labels);
    assert_eq!(live.beam().severities, replayed.beam().severities);

    std::fs::remove_dir_all(&dir).ok();
}
