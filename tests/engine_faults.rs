//! Hostile-workload tests for the engine's fault-tolerance harness:
//! per-cell isolation (healthy siblings of a failing cell complete),
//! deterministic retry (a recovered cell is byte-identical to an
//! untroubled run), watchdog classification of hung cells, and
//! checkpoint/resume through the campaign manifest.
//!
//! Every test uses its own hostile tag: the staged-failure registry is
//! keyed by tag and process-global, so tags must never be shared
//! between tests (they run in one test binary).

use mixed_precision_reliability::exp::{
    CellKey, CellKind, DeviceId, Engine, ExperimentPlan, FailureKind, Manifest, ResultStore,
    WorkloadId,
};
use mixed_precision_reliability::fault::hostile::HostileMode;
use mixed_precision_reliability::softfloat::Precision;
use std::sync::Arc;
use std::time::Duration;

fn hostile_cell(tag: u64, mode: HostileMode) -> CellKey {
    CellKey {
        device: DeviceId::TitanV,
        workload: WorkloadId::Hostile { tag, mode },
        precision: Precision::Single,
        kind: CellKind::Accumulate {
            faults: 2,
            trials: 4,
        },
    }
}

fn healthy_cell(precision: Precision) -> CellKey {
    CellKey {
        device: DeviceId::Zynq7000,
        workload: WorkloadId::Gemm { dim: 8 },
        precision,
        kind: CellKind::Accumulate {
            faults: 4,
            trials: 6,
        },
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mpr_faults_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Sorted (name, bytes) pairs of every cache entry in a directory.
fn cache_entries(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut entries: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("cache dir")
        .map(|e| e.expect("dir entry"))
        .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
        .filter(|e| e.file_name() != "manifest.json")
        .map(|e| {
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).expect("read entry"),
            )
        })
        .collect();
    entries.sort();
    entries
}

#[test]
fn healthy_cells_complete_when_a_sibling_keeps_panicking() {
    // K-of-N failure plan: one cell panics on every attempt, three are
    // healthy. The healthy three must complete; the failure must be
    // structured, not a propagated panic.
    let mut plan = ExperimentPlan::new();
    plan.push(healthy_cell(Precision::Double));
    plan.push(hostile_cell(
        0xFA_0001,
        HostileMode::FlakyGolden { panics: u32::MAX },
    ));
    plan.push(healthy_cell(Precision::Single));
    plan.push(healthy_cell(Precision::Half));

    let engine = Engine::new(41).with_retries(1);
    let results = engine.try_run(&plan);
    assert_eq!(results.len(), 4);
    assert!(results[0].is_ok() && results[2].is_ok() && results[3].is_ok());
    let failure = results[1].as_ref().expect_err("hostile cell must fail");
    assert_eq!(failure.attempts, 2, "one attempt plus one retry");
    assert!(matches!(failure.kind, FailureKind::Panicked { .. }));
    assert!(failure.cell.contains("hostile"), "{}", failure.cell);
    assert_eq!(engine.store().executed(), 3, "healthy cells all executed");
}

#[test]
fn recovered_cells_are_byte_identical_to_untroubled_runs() {
    // DT001: a retry reuses the cell's seed unchanged. The flaky
    // registry stages exactly one panic for this tag, so the first
    // engine needs a retry while the second (same key, same seed,
    // staged panics already consumed) runs clean. Their cache bytes
    // must match exactly.
    let key = hostile_cell(0xFA_0002, HostileMode::FlakyGolden { panics: 1 });

    let dir_a = temp_dir("retry_a");
    let recovered = Engine::new(43)
        .with_retries(2)
        .with_store(Arc::new(ResultStore::with_cache_dir(&dir_a)))
        .try_run_one(&key)
        .expect("retry must recover");

    let dir_b = temp_dir("retry_b");
    let clean = Engine::new(43)
        .with_store(Arc::new(ResultStore::with_cache_dir(&dir_b)))
        .try_run_one(&key)
        .expect("staged panics are spent; this run is clean");

    assert_eq!(recovered.accumulate().trials, clean.accumulate().trials);
    let (a, b) = (cache_entries(&dir_a), cache_entries(&dir_b));
    assert_eq!(a.len(), 1);
    assert_eq!(a, b, "recovered result must be byte-identical");

    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

#[test]
fn hung_cells_are_classified_by_the_watchdog() {
    // Each dispatch stalls 400ms; the watchdog fires at 50ms. The
    // cooperative poll runs at strike-batch (here: trial) granularity,
    // so the cell is abandoned after the first trial, not mid-flight.
    let key = hostile_cell(0xFA_0003, HostileMode::SlowStrike { millis: 400 });
    let engine = Engine::new(47)
        .with_retries(1)
        .with_cell_timeout(Some(Duration::from_millis(50)));
    let failure = engine.try_run_one(&key).expect_err("cell must hang");
    assert_eq!(failure.attempts, 2);
    let FailureKind::Hung { timeout_s } = failure.kind else {
        panic!("expected Hung, got {:?}", failure.kind);
    };
    assert!((timeout_s - 0.05).abs() < 1e-9, "{timeout_s}");
    assert_eq!(engine.store().executed(), 0, "no partial result published");
}

#[test]
fn slow_but_not_stuck_cells_pass_an_ample_watchdog() {
    // The watchdog must not misclassify ordinary work: with a deadline
    // far above the cell's real cost, everything completes.
    let mut plan = ExperimentPlan::new();
    plan.push(healthy_cell(Precision::Double));
    plan.push(hostile_cell(0xFA_0004, HostileMode::WellBehaved));
    let engine = Engine::new(53).with_cell_timeout(Some(Duration::from_secs(120)));
    assert!(engine.try_run(&plan).iter().all(Result::is_ok));
}

#[test]
fn resume_re_executes_exactly_the_failed_subset() {
    let dir = temp_dir("resume");
    let flaky = hostile_cell(0xFA_0005, HostileMode::FlakyGolden { panics: 1 });
    let mut plan = ExperimentPlan::new();
    plan.push(healthy_cell(Precision::Double));
    plan.push(flaky.clone());
    plan.push(healthy_cell(Precision::Single));
    plan.push(healthy_cell(Precision::Half));

    // First run: no retries, so the flaky cell fails; the three healthy
    // cells land in the cache and the manifest records all four.
    let first = Engine::new(59).with_store(Arc::new(ResultStore::with_cache_dir(&dir)));
    let results = first.try_run(&plan);
    assert_eq!(results.iter().filter(|r| r.is_ok()).count(), 3);
    let manifest = Manifest::load(&dir).expect("manifest written");
    assert_eq!(manifest.cells.len(), 4);
    assert_eq!(manifest.unfinished().len(), 1, "exactly the flaky cell");
    let healthy_bytes = cache_entries(&dir);
    assert_eq!(healthy_bytes.len(), 3);

    // Resume: a fresh engine over the same cache. The staged panic is
    // spent, so the flaky cell now succeeds — and it is the *only*
    // cell that executes; the healthy three replay from disk
    // byte-identically.
    let second = Engine::new(59).with_store(Arc::new(ResultStore::with_cache_dir(&dir)));
    let resumed = second.try_run(&plan);
    assert!(resumed.iter().all(Result::is_ok));
    assert_eq!(second.store().executed(), 1, "only the failed cell re-ran");
    assert_eq!(second.store().disk_hits(), 3);
    let after = cache_entries(&dir);
    assert_eq!(after.len(), 4);
    for (name, bytes) in &healthy_bytes {
        let replayed = after.iter().find(|(n, _)| n == name).expect("entry kept");
        assert_eq!(&replayed.1, bytes, "{name} changed across resume");
    }
    let manifest = Manifest::load(&dir).expect("manifest rewritten");
    assert!(manifest.unfinished().is_empty(), "ledger now all ok");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn failure_outcomes_are_thread_count_invariant() {
    // An always-failing cell misbehaves identically on every attempt,
    // so the whole result vector — successes and structured failures
    // alike — must not depend on the worker-thread count. (The staged
    // panic *message* carries a process-global attempt number, so the
    // comparison covers results, failing cell, and attempt counts.)
    let run = |threads: usize| {
        let mut plan = ExperimentPlan::new();
        plan.push(healthy_cell(Precision::Double));
        plan.push(hostile_cell(
            0xFA_0006,
            HostileMode::FlakyGolden { panics: u32::MAX },
        ));
        plan.push(healthy_cell(Precision::Single));
        let engine = Engine::new(61).with_threads(threads);
        engine
            .try_run(&plan)
            .iter()
            .map(|r| match r {
                Ok(v) => format!("ok:{v:?}"),
                Err(f) => format!("err:{}:{} attempts", f.cell, f.attempts),
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    let baseline = run(1);
    assert_eq!(baseline, run(2));
    assert_eq!(baseline, run(5));
}
