//! The fast-path contract (DT001): monomorphized hooks and
//! golden-prefix replay must be byte-identical to the naive
//! full-rerun path, and must not move any previously observable bit.
//!
//! Three layers of evidence:
//!
//! 1. a differential sweep — every workload x supported precision x a
//!    deterministic spread of fault sites (region boundaries included)
//!    x every fault shape, fast vs naive, compared bit-for-bit;
//! 2. pinned fingerprints — golden outputs, campaign severity vectors
//!    (threads 1/2/5), and beam cross-section counts hashed against
//!    values captured from the pre-fast-path implementation;
//! 3. the experiment engine's on-disk cache bytes, hashed against the
//!    pre-fast-path bytes under the unchanged `KEY_VERSION` ("v2") —
//!    the fast path earns zero cache invalidation.

use mixed_precision_reliability::arch::{Fpga, VoltaGpu};
use mixed_precision_reliability::beam::{BeamCampaign, BeamSession};
use mixed_precision_reliability::exp::{
    CellKey, CellKind, ClassifierId, DeviceId, Engine, ResultStore, SamplingPlan, WorkloadId,
    KEY_VERSION,
};
use mixed_precision_reliability::fault::hook::FaultHook;
use mixed_precision_reliability::fault::{FaultModel, InjectionCampaign, ValueFault, Workload};
use mixed_precision_reliability::kernels::{profiles, Gemm, LavaMd, Lud, Micro, MicroKernelOp};
use mixed_precision_reliability::obs::fnv1a64;
use mixed_precision_reliability::softfloat::Precision;
use std::collections::BTreeSet;
use std::sync::Arc;

/// FNV-1a over the little-endian bit patterns — bit-exact, NaN-safe.
fn hash_f64s(v: &[f64]) -> u64 {
    let mut bytes = Vec::with_capacity(v.len() * 8);
    for x in v {
        bytes.extend_from_slice(&x.to_bits().to_le_bytes());
    }
    fnv1a64(&bytes)
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Strips a workload back to the naive path: only the required methods
/// are forwarded, so every provided default (full rerun through the
/// `dyn` hook, no golden reuse) executes as if the fast path did not
/// exist.
struct ForceNaive<'a>(&'a dyn Workload);

impl Workload for ForceNaive<'_> {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn dispatch(&self, precision: Precision, hook: &mut dyn FaultHook) -> Vec<f64> {
        self.0.dispatch(precision, hook)
    }

    fn supports(&self, precision: Precision) -> bool {
        self.0.supports(precision)
    }
}

/// A deterministic spread of sites: both ends, every 1/13th of the site
/// space (crossing each kernel's input/compute region boundaries), and
/// two past-the-end sites where the fault never fires.
fn site_sample(site_count: u64) -> Vec<u64> {
    let mut sites = BTreeSet::new();
    sites.insert(0);
    sites.insert(1);
    sites.insert(site_count - 1);
    for k in 1..13 {
        sites.insert(k * site_count / 13);
    }
    sites.insert(site_count); // first unreachable site
    sites.insert(site_count + 17);
    sites.into_iter().collect()
}

fn fault_shapes(width: u32) -> Vec<ValueFault> {
    vec![
        ValueFault::BitFlip(0),
        ValueFault::BitFlip(width - 1),
        ValueFault::DoubleBitFlip(1, width - 2),
        ValueFault::ByteCorrupt { byte: 1, xor: 0xA5 },
        ValueFault::XorMask(0xDEAD_BEEF),
        ValueFault::StuckHigh(width - 2),
        ValueFault::StuckLow(0),
    ]
}

#[test]
fn fast_path_is_bit_identical_to_naive_everywhere() {
    let gemm = Gemm::new(8);
    let lud = Lud::new(8);
    let lava = LavaMd::new(2, 2);
    let lava_knc = LavaMd::new(2, 2).for_knc();
    let micro = Micro::new(MicroKernelOp::Fma, 4, 64);
    let workloads: [&dyn Workload; 5] = [&gemm, &lud, &lava, &lava_knc, &micro];

    for w in workloads {
        let naive = ForceNaive(w);
        for p in Precision::ALL {
            if !w.supports(p) {
                continue;
            }
            // Golden and site counts agree between the monomorphized
            // and dyn paths before any strike runs.
            let golden = w.run_golden(p);
            assert_eq!(
                bits(&golden),
                bits(&naive.run_golden(p)),
                "{} {p}: golden diverged",
                w.name()
            );
            let sc = w.site_count(p);
            assert_eq!(sc, naive.site_count(p), "{} {p}: site count", w.name());

            let mut out = Vec::new();
            for site in site_sample(sc) {
                for fault in fault_shapes(p.total_bits()) {
                    let want = naive.run_with_fault(p, site, fault);
                    w.run_from_site_into(p, site, fault, &golden, &mut out);
                    assert_eq!(
                        bits(&out),
                        bits(&want),
                        "{} {p} site {site}/{sc} {fault:?}: replay diverged",
                        w.name()
                    );
                    // The allocating form must agree with the buffered one.
                    let alloc = w.run_from_site(p, site, fault, &golden);
                    assert_eq!(bits(&alloc), bits(&out), "{} {p} site {site}", w.name());
                }
            }
        }
    }
}

#[test]
fn golden_fingerprints_match_the_pre_fast_path_implementation() {
    // (workload, precision, site_count, fnv1a64 of the golden bits) —
    // captured by running the naive implementation before this PR's
    // kernel rewrite. Any drift here is an output change, not a perf
    // regression.
    let gemm8 = Gemm::new(8);
    let gemm32 = Gemm::new(32);
    let lud8 = Lud::new(8);
    let lava22 = LavaMd::new(2, 2);
    let lava_knc = LavaMd::new(2, 2).for_knc();
    let micro = Micro::new(MicroKernelOp::Fma, 4, 64);
    let pins: [(&dyn Workload, Precision, u64, u64); 16] = [
        (&gemm8, Precision::Double, 640, 0x68eb9f5d04bed2f4),
        (&gemm8, Precision::Single, 640, 0xd9e725cdcb33a068),
        (&gemm8, Precision::Half, 640, 0x0538f3fa9738660d),
        (&gemm32, Precision::Double, 34816, 0x7ecd6174de7f8a13),
        (&gemm32, Precision::Single, 34816, 0xf4430c818cf99183),
        (&gemm32, Precision::Half, 34816, 0x0fa9bd80ae88be39),
        (&lud8, Precision::Double, 232, 0x66f5013e056944c4),
        (&lud8, Precision::Single, 232, 0xa799f783821f0512),
        (&lava22, Precision::Double, 4384, 0x8a82bd3e99774359),
        (&lava22, Precision::Single, 2944, 0xea8b4f548428814c),
        (&lava22, Precision::Half, 2224, 0x65db4c428c8fab58),
        // The KNC transcendental unit changes the *site* population but
        // is fault-free exact: goldens match the Taylor path.
        (&lava_knc, Precision::Double, 6544, 0x8a82bd3e99774359),
        (&lava_knc, Precision::Single, 2704, 0xea8b4f548428814c),
        (&lava_knc, Precision::Half, 2224, 0x65db4c428c8fab58),
        (&micro, Precision::Double, 256, 0x455e00df70df99df),
        (&micro, Precision::Single, 256, 0xe28c0925a65abe3b),
    ];
    for (w, p, sites, hash) in pins {
        assert_eq!(w.site_count(p), sites, "{} {p} site count moved", w.name());
        assert_eq!(
            hash_f64s(&w.run_golden(p)),
            hash,
            "{} {p} golden bits moved",
            w.name()
        );
    }
    assert_eq!(
        hash_f64s(&micro.run_golden(Precision::Half)),
        0x73ab71fc17a6aff6
    );
}

#[test]
fn injection_campaigns_reproduce_pinned_results_across_threads() {
    let gemm8 = Gemm::new(8);
    for threads in [1usize, 2, 5] {
        let r = InjectionCampaign::new(&gemm8, Precision::Single)
            .injections(300)
            .seed(42)
            .threads(threads)
            .run();
        assert_eq!(
            (r.counts.masked, r.counts.sdc, r.counts.due),
            (7, 293, 0),
            "threads={threads}"
        );
        assert_eq!(
            hash_f64s(&r.severities),
            0x956ad637fbb2021f,
            "severity bits moved at threads={threads}"
        );
    }

    let r = InjectionCampaign::new(&LavaMd::new(2, 2), Precision::Half)
        .injections(200)
        .seed(7)
        .model(FaultModel::RandomByte)
        .threads(3)
        .run();
    assert_eq!((r.counts.masked, r.counts.sdc), (87, 113));
    assert_eq!(hash_f64s(&r.severities), 0x4c1685803a1d8676);

    let r = InjectionCampaign::new(&Lud::new(8), Precision::Double)
        .injections(200)
        .seed(9)
        .threads(2)
        .run();
    assert_eq!((r.counts.masked, r.counts.sdc), (0, 200));
    assert_eq!(hash_f64s(&r.severities), 0x1797c5f0e286734b);
}

#[test]
fn beam_campaigns_reproduce_pinned_results_across_threads() {
    let gemm8 = Gemm::new(8);
    let fpga = Fpga::zynq7000();
    let profile = profiles::mxm_fpga();
    for threads in [1usize, 2, 5] {
        let mut session = BeamSession::quick(11).with_target_candidates(150);
        session.threads = threads;
        let r = BeamCampaign::new(&fpga, &gemm8, &profile, Precision::Half)
            .session(session)
            .run();
        assert_eq!(
            (r.candidates, r.sdc.events()),
            (140, 57),
            "threads={threads}"
        );
        assert_eq!(
            hash_f64s(&r.severities),
            0xd45db3cac3cc6f2f,
            "severity bits moved at threads={threads}"
        );
    }

    let gpu = VoltaGpu::titan_v();
    let profile = profiles::mxm_gpu();
    let r = BeamCampaign::new(&gpu, &gemm8, &profile, Precision::Single)
        .session(BeamSession::quick(13).with_target_candidates(150))
        .run();
    assert_eq!((r.candidates, r.sdc.events()), (141, 140));
    assert_eq!(hash_f64s(&r.severities), 0x6082250a062807dd);
}

#[test]
fn engine_cache_bytes_unchanged_with_no_key_version_bump() {
    // The fast path must not invalidate a single cached cell: same key
    // version, same bytes as the pre-fast-path engine wrote.
    assert_eq!(KEY_VERSION, "v2", "fast path must not bump the cache key");

    let dir = std::env::temp_dir().join(format!("mpr_fastpath_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = Arc::new(ResultStore::with_cache_dir(&dir));
    let engine = Engine::new(99).with_threads(3).with_store(store);
    let cells = [
        CellKey {
            device: DeviceId::Knc3120a,
            workload: WorkloadId::Gemm { dim: 10 },
            precision: Precision::Single,
            kind: CellKind::Inject {
                injections: 200,
                model: FaultModel::SingleBit,
                live_fraction: 1.0,
                sampling: SamplingPlan::Fixed,
            },
        },
        CellKey {
            device: DeviceId::TitanV,
            workload: WorkloadId::Yolo,
            precision: Precision::Half,
            kind: CellKind::Beam {
                hours: 10.0,
                target_candidates: 160,
                classifier: ClassifierId::YoloDetections,
                sampling: SamplingPlan::Fixed,
            },
        },
    ];
    for cell in &cells {
        let _ = engine.run_one(cell);
    }

    // Hash every result file (manifest.json is run bookkeeping) in
    // sorted relative-path order, null-separated.
    let mut files: Vec<(String, Vec<u8>)> = Vec::new();
    let mut stack = vec![dir.clone()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).expect("cache dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else if path.file_name().is_some_and(|n| n != "manifest.json") {
                let rel = path
                    .strip_prefix(&dir)
                    .expect("under cache dir")
                    .to_string_lossy()
                    .into_owned();
                files.push((rel, std::fs::read(&path).expect("cache file")));
            }
        }
    }
    files.sort();
    let mut bytes = Vec::new();
    for (rel, content) in &files {
        bytes.extend_from_slice(rel.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(content);
        bytes.push(0);
    }
    assert_eq!(files.len(), 2, "both cells must persist");
    assert_eq!(
        fnv1a64(&bytes),
        0xe2050c6ea3c141e4,
        "cached campaign bytes moved — the fast path changed an output"
    );
    std::fs::remove_dir_all(&dir).ok();
}
