//! Reproducibility: every stochastic component is a pure function of its
//! seed, across thread counts and repeated runs.

use mixed_precision_reliability::arch::VoltaGpu;
use mixed_precision_reliability::beam::{BeamCampaign, BeamSession};
use mixed_precision_reliability::fault::Workload;
use mixed_precision_reliability::fault::{FaultModel, InjectionCampaign};
use mixed_precision_reliability::kernels::{profiles, Gemm, LavaMd, Lud, Micro, MicroKernelOp};
use mixed_precision_reliability::softfloat::Precision;

#[test]
fn golden_runs_are_bit_identical() {
    let kernels: Vec<Box<dyn Workload>> = vec![
        Box::new(Gemm::new(10)),
        Box::new(LavaMd::new(2, 2)),
        Box::new(Lud::new(12)),
        Box::new(Micro::new(MicroKernelOp::Fma, 4, 64)),
    ];
    for k in &kernels {
        for p in Precision::ALL {
            if !k.supports(p) {
                continue;
            }
            let a = k.run_golden(p);
            let b = k.run_golden(p);
            let a_bits: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
            let b_bits: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a_bits, b_bits, "{} at {p}", k.name());
        }
    }
}

#[test]
fn injection_campaigns_replay_exactly() {
    let gemm = Gemm::new(10);
    let run = |threads| {
        InjectionCampaign::new(&gemm, Precision::Half)
            .injections(150)
            .seed(99)
            .model(FaultModel::pipeline(0.2))
            .threads(threads)
            .run()
    };
    let a = run(1);
    let b = run(4);
    let c = run(9);
    assert_eq!(a.counts, b.counts);
    assert_eq!(b.counts, c.counts);
}

#[test]
fn beam_campaigns_replay_exactly() {
    let gpu = VoltaGpu::titan_v();
    let micro = Micro::new(MicroKernelOp::Add, 8, 64);
    let prof = profiles::micro(MicroKernelOp::Add);
    let run = |threads: usize| {
        let mut s = BeamSession::quick(7).with_target_candidates(200);
        s.threads = threads;
        BeamCampaign::new(&gpu, &micro, &prof, Precision::Single)
            .session(s)
            .run()
    };
    let a = run(1);
    let b = run(8);
    assert_eq!(a.sdc.events(), b.sdc.events());
    assert_eq!(a.due.events(), b.due.events());
    assert_eq!(a.candidates, b.candidates);
    let mut sa = a.severities.clone();
    let mut sb = b.severities.clone();
    sa.sort_by(f64::total_cmp);
    sb.sort_by(f64::total_cmp);
    assert_eq!(sa, sb);
}

#[test]
fn studies_with_equal_seeds_agree() {
    use mixed_precision_reliability::core::Study;
    let a = Study::quick(31).fig5_fpga_mebf();
    let b = Study::quick(31).fig5_fpga_mebf();
    assert_eq!(a.mxm_mebf, b.mxm_mebf);
    assert_eq!(a.mnist_mebf, b.mnist_mebf);
    let c = Study::quick(32).fig5_fpga_mebf();
    assert_ne!(a.mxm_mebf, c.mxm_mebf, "different seeds must differ");
}
