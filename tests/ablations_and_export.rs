//! Integration coverage for the beyond-the-paper features: ablations,
//! CSV export, severity histograms, and the accuracy-agreement check.

use mixed_precision_reliability::core::Study;
use mixed_precision_reliability::metrics::SeverityHistogram;
use mixed_precision_reliability::nn::Mnist;
use mixed_precision_reliability::softfloat::Precision;

#[test]
fn export_round_trips_through_the_filesystem() {
    let dir = std::env::temp_dir().join(format!("mpr_it_export_{}", std::process::id()));
    let study = Study::quick(60);
    let paths = study.export_csv(&dir).expect("export succeeds");
    assert!(paths.iter().any(|p| p.ends_with("fig4.csv")));
    // Figure 4's CSV carries the TRE grid with three precision columns.
    let fig4 = std::fs::read_to_string(dir.join("fig4.csv")).unwrap();
    let header = fig4.lines().next().unwrap();
    assert_eq!(header, "TRE,double,single,half");
    assert_eq!(fig4.lines().count(), 8, "header + 7 tolerance rows");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ecc_ablation_is_deterministic_and_ordered() {
    let a = Study::quick(61).ablation_gpu_ecc();
    let b = Study::quick(61).ablation_gpu_ecc();
    assert_eq!(a.sdc_reduction(), b.sdc_reduction());
    // ECC always helps SDC FIT (reduction factor >= 1) for both rows;
    // quick-scale campaigns see Poisson noise of a few tens of events,
    // so allow the estimate to dip modestly below 1.
    for row in a.sdc_reduction() {
        for r in row {
            assert!(r >= 0.85, "{:?}", a.sdc_reduction());
        }
    }
}

#[test]
fn accumulation_ablation_reaches_saturation() {
    let ab = Study::quick(62).ablation_fault_accumulation();
    let last = ab.sdc_probability.last().unwrap();
    for p in 0..3 {
        assert!(last[p] > 0.9, "{last:?}");
    }
}

#[test]
fn severity_histograms_expose_the_mantissa_floor() {
    // A half-precision campaign cannot produce relative errors below
    // ~2^-11; the histogram's low decades must be empty.
    use mixed_precision_reliability::arch::VoltaGpu;
    use mixed_precision_reliability::beam::{BeamCampaign, BeamSession};
    use mixed_precision_reliability::kernels::{profiles, Gemm};

    let gpu = VoltaGpu::titan_v();
    let gemm = Gemm::new(12);
    let prof = profiles::mxm_gpu();
    let result = BeamCampaign::new(&gpu, &gemm, &prof, Precision::Half)
        .session(BeamSession::quick(63).with_target_candidates(400))
        .run();
    let hist = SeverityHistogram::from_errors(&result.severities);
    let empty_low_decades: u64 = hist
        .decades()
        .iter()
        .filter(|(edge, _)| *edge < 1e-5)
        .map(|(_, c)| *c)
        .sum();
    assert_eq!(empty_low_decades, 0, "half has no sub-1e-5 severities");
    // Whereas double populates them.
    let result_d = BeamCampaign::new(&gpu, &gemm, &prof, Precision::Double)
        .session(BeamSession::quick(63).with_target_candidates(400))
        .run();
    let hist_d = SeverityHistogram::from_errors(&result_d.severities);
    let low_d: u64 = hist_d
        .decades()
        .iter()
        .filter(|(edge, _)| *edge < 1e-5)
        .map(|(_, c)| *c)
        .sum();
    assert!(low_d > 0, "double populates the low decades");
}

#[test]
fn mnist_agreement_matches_the_paper_quote() {
    let m = Mnist::new();
    assert!(m.batch_agreement(Precision::Half, Precision::Double, 30) >= 0.98);
}
