//! The adaptive-sampling contract (DESIGN.md §4k): stratified
//! allocation with sequential early stopping must be a pure function of
//! completed-round statistics keyed by strike index — byte-identical
//! across worker-thread counts and strike-batch sizes — while the fixed
//! path stays byte-identical to its pre-adaptive pins and the study's
//! headline conclusions survive the smaller strike budgets.
//!
//! Four layers of evidence:
//!
//! 1. adaptive campaigns (beam and inject) swept over threads 1/2/5 x
//!    strike batches 1/7/64, compared bit-for-bit;
//! 2. the fixed path re-asserted against fingerprints captured before
//!    adaptive sampling existed;
//! 3. a quick-scale study run twice — fixed vs adaptive — with the
//!    FPGA figure conclusions (FIT ordering, TRE monotonicity, MEBF
//!    crossovers) required to agree while adaptive executes fewer
//!    strikes;
//! 4. the engine's cross-cell reallocation observed end to end: a
//!    converged cell's spare budget reruns an unconverged cell under a
//!    boosted-budget key.

use mixed_precision_reliability::arch::{Fpga, VoltaGpu};
use mixed_precision_reliability::beam::{BeamCampaign, BeamSession};
use mixed_precision_reliability::core::Study;
use mixed_precision_reliability::exp::{
    CellKey, CellKind, ClassifierId, DeviceId, Engine, ExperimentPlan, ResultStore, SamplingConfig,
    SamplingPlan, WorkloadId,
};
use mixed_precision_reliability::fault::{FaultModel, InjectionCampaign};
use mixed_precision_reliability::kernels::{profiles, Gemm};
use mixed_precision_reliability::obs::fnv1a64;
use mixed_precision_reliability::softfloat::Precision;
use std::sync::Arc;

/// FNV-1a over the little-endian bit patterns — bit-exact, NaN-safe.
fn hash_f64s(v: &[f64]) -> u64 {
    let mut bytes = Vec::with_capacity(v.len() * 8);
    for x in v {
        bytes.extend_from_slice(&x.to_bits().to_le_bytes());
    }
    fnv1a64(&bytes)
}

#[test]
fn adaptive_beam_is_thread_and_batch_invariant() {
    let gemm8 = Gemm::new(8);
    let fpga = Fpga::zynq7000();
    let profile = profiles::mxm_fpga();
    let run = |threads: usize, batch: usize| {
        let mut session = BeamSession::quick(11).with_target_candidates(150);
        session.threads = threads;
        BeamCampaign::new(&fpga, &gemm8, &profile, Precision::Half)
            .session(session)
            .strike_batch(batch)
            .sampling(SamplingPlan::Adaptive(SamplingConfig::quick()))
            .run()
    };
    let baseline = run(1, 64);
    assert!(
        baseline.executed < baseline.candidates,
        "adaptive must stop early on a cell this rich in SDCs \
         (executed {} of {})",
        baseline.executed,
        baseline.candidates
    );
    assert!(
        baseline.ci_width() <= SamplingConfig::quick().ci_width,
        "early stop must only fire once the CI target is met"
    );
    for threads in [1usize, 2, 5] {
        for batch in [1usize, 7, 64] {
            let r = run(threads, batch);
            assert_eq!(
                (r.candidates, r.executed, r.sdc.events(), r.due.events()),
                (
                    baseline.candidates,
                    baseline.executed,
                    baseline.sdc.events(),
                    baseline.due.events()
                ),
                "adaptive beam counts moved at threads={threads} batch={batch}"
            );
            assert_eq!(
                hash_f64s(&r.severities),
                hash_f64s(&baseline.severities),
                "adaptive beam severity bits moved at threads={threads} batch={batch}"
            );
        }
    }
}

#[test]
fn adaptive_inject_is_thread_and_batch_invariant() {
    let gemm8 = Gemm::new(8);
    let run = |threads: usize, batch: usize| {
        InjectionCampaign::new(&gemm8, Precision::Single)
            .injections(300)
            .seed(42)
            .threads(threads)
            .strike_batch(batch)
            .sampling(SamplingPlan::Adaptive(SamplingConfig::quick()))
            .run()
    };
    let baseline = run(1, 64);
    assert!(
        baseline.counts.total() < 300,
        "adaptive must stop early on a cell this rich in SDCs \
         (executed {} of 300)",
        baseline.counts.total()
    );
    for threads in [1usize, 2, 5] {
        for batch in [1usize, 7, 64] {
            let r = run(threads, batch);
            assert_eq!(
                r.counts, baseline.counts,
                "adaptive inject counts moved at threads={threads} batch={batch}"
            );
            assert_eq!(
                hash_f64s(&r.severities),
                hash_f64s(&baseline.severities),
                "adaptive inject severity bits moved at threads={threads} batch={batch}"
            );
        }
    }
}

#[test]
fn fixed_path_still_matches_pre_adaptive_pins() {
    // The fixed path is the reference oracle: introducing the adaptive
    // engine must not move a single previously observable bit.
    let gemm8 = Gemm::new(8);
    let fpga = Fpga::zynq7000();
    let profile = profiles::mxm_fpga();
    let r = BeamCampaign::new(&fpga, &gemm8, &profile, Precision::Half)
        .session(BeamSession::quick(11).with_target_candidates(150))
        .run();
    assert_eq!((r.candidates, r.sdc.events()), (140, 57));
    assert_eq!(r.executed, r.candidates, "fixed path executes everything");
    assert_eq!(hash_f64s(&r.severities), 0xd45db3cac3cc6f2f);

    let gpu = VoltaGpu::titan_v();
    let profile = profiles::mxm_gpu();
    let r = BeamCampaign::new(&gpu, &gemm8, &profile, Precision::Single)
        .session(BeamSession::quick(13).with_target_candidates(150))
        .run();
    assert_eq!((r.candidates, r.sdc.events()), (141, 140));
    assert_eq!(hash_f64s(&r.severities), 0x6082250a062807dd);

    let r = InjectionCampaign::new(&gemm8, Precision::Single)
        .injections(300)
        .seed(42)
        .threads(3)
        .run();
    assert_eq!((r.counts.masked, r.counts.sdc, r.counts.due), (7, 293, 0));
    assert_eq!(hash_f64s(&r.severities), 0x956ad637fbb2021f);
}

/// Indices of `xs` sorted ascending by value — the ordering a reader
/// takes away from a figure, robust to small estimate shifts.
fn rank3(xs: &[f64; 3]) -> [usize; 3] {
    let mut idx = [0usize, 1, 2];
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("finite figure values"));
    idx
}

#[test]
fn quick_study_conclusions_survive_adaptive_budgets() {
    let fixed = Study::quick(2019).with_threads(2);
    let adaptive = Study::quick(2019)
        .with_sampling(SamplingPlan::Adaptive(SamplingConfig::quick()))
        .with_threads(2);

    // Figure 3: the FIT ordering across precisions is the headline.
    let (f3, a3) = (fixed.fig3_fpga_fit(), adaptive.fig3_fpga_fit());
    assert_eq!(rank3(&f3.mxm_fit), rank3(&a3.mxm_fit), "fig3 MxM ordering");
    assert_eq!(
        rank3(&f3.mnist_fit),
        rank3(&a3.mnist_fit),
        "fig3 MNIST ordering"
    );

    // Figure 4: surviving FIT fractions shrink as the tolerated error
    // grows, under either sampling plan.
    let (f4, a4) = (fixed.fig4_fpga_tre(), adaptive.fig4_fpga_tre());
    for fig in [&f4, &a4] {
        let (loose, tight) = (fig.surviving_at(1e-1), fig.surviving_at(1e-4));
        for i in 0..3 {
            assert!(
                loose[i] <= tight[i],
                "fig4 surviving fraction must not grow with tolerance"
            );
        }
    }

    // Figure 5: the sign of each MEBF crossover vs double is the
    // paper's takeaway; both plans must agree on it.
    let (f5, a5) = (fixed.fig5_fpga_mebf(), adaptive.fig5_fpga_mebf());
    for (f, a) in [
        (&f5.mxm_mebf, &a5.mxm_mebf),
        (&f5.mnist_mebf, &a5.mnist_mebf),
    ] {
        for i in 1..3 {
            assert_eq!(
                f[i] >= f[0],
                a[i] >= a[0],
                "fig5 MEBF crossover direction flipped under adaptive sampling"
            );
        }
    }

    // And the budget actually shrank: across the study's beam cells,
    // adaptive executed strictly fewer strikes than it was budgeted.
    let mut budget = 0u64;
    let mut executed = 0u64;
    for (_, result) in adaptive.engine().store().snapshot() {
        if let mixed_precision_reliability::exp::CellResult::Beam(r) = result {
            budget += r.candidates;
            executed += r.executed;
        }
    }
    assert!(
        executed < budget,
        "adaptive study must save strikes (executed {executed} of {budget})"
    );
}

#[test]
fn engine_reallocates_spare_budget_into_boosted_reruns() {
    // Two adaptive cells under one plan, tuned so the SDC-rich GEMM
    // cell converges with strikes to spare while its sibling exhausts
    // the same budget without reaching the (deliberately tight) CI
    // target. The engine must reinvest the spare strikes by rerunning
    // the noisy cell under a boosted-budget key.
    let config = SamplingConfig::quick().with_ci_width(0.3);
    let rich = CellKey {
        device: DeviceId::Knc3120a,
        workload: WorkloadId::Gemm { dim: 10 },
        precision: Precision::Single,
        kind: CellKind::Inject {
            injections: 600,
            model: FaultModel::SingleBit,
            live_fraction: 1.0,
            sampling: SamplingPlan::Adaptive(config),
        },
    };
    let noisy = CellKey {
        device: DeviceId::Zynq7000,
        workload: WorkloadId::Gemm { dim: 8 },
        precision: Precision::Half,
        kind: CellKind::Beam {
            hours: 4.0,
            target_candidates: 150,
            classifier: ClassifierId::None,
            sampling: SamplingPlan::Adaptive(config),
        },
    };
    let store = Arc::new(ResultStore::in_memory());
    let engine = Engine::new(99).with_threads(2).with_store(store.clone());
    let mut plan = ExperimentPlan::new();
    plan.push(rich.clone());
    plan.push(noisy.clone());
    let results = engine.run(&plan);
    assert_eq!(results.len(), 2);

    let boosted: Vec<String> = store
        .snapshot()
        .into_iter()
        .map(|(key, _)| key)
        .filter(|key| key.contains(";b:") && !key.contains(";b:-"))
        .collect();
    assert_eq!(
        boosted.len(),
        1,
        "exactly the noisy cell reruns under a boosted-budget key, got {boosted:?}"
    );
    assert!(
        boosted[0].contains("k=beam"),
        "the beam cell was the unconverged one: {}",
        boosted[0]
    );

    // The returned plan slot carries the boosted rerun: it pushed past
    // the original budget the phase-1 attempt exhausted.
    let beam = results[1].beam();
    assert!(
        beam.executed > 0 && beam.candidates > 0,
        "boosted rerun must produce a populated result"
    );
}
